package bench

import (
	"bytes"
	"strings"
	"testing"

	"dbcc/internal/ccalg"
	"dbcc/internal/datagen"
	"dbcc/internal/xrand"
)

// quickConfig is a fast configuration for unit-testing the harness.
func quickConfig() Config {
	return Config{Scale: 0.05, Segments: 4, Reps: 1, Seed: 7, CapacityFactor: 0, Verify: true}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets()
	if len(ds) != 12 {
		t.Fatalf("registry has %d datasets, want 12 (Table II)", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		names[d.Name] = true
		g := d.Gen(0.05, 1)
		if g.NumEdges() == 0 {
			t.Fatalf("%s generated an empty graph", d.Name)
		}
	}
	if _, ok := DatasetByName("Andromeda"); !ok {
		t.Fatal("DatasetByName failed")
	}
	if _, ok := DatasetByName("nope"); ok {
		t.Fatal("DatasetByName accepted unknown name")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	for _, d := range Datasets() {
		a := d.Gen(0.05, 3)
		b := d.Gen(0.05, 3)
		if a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s not deterministic: %d vs %d edges", d.Name, a.NumEdges(), b.NumEdges())
		}
		if a.NumEdges() > 0 && a.Edges[0] != b.Edges[0] {
			t.Fatalf("%s not deterministic in content", d.Name)
		}
	}
}

func TestRunOneCell(t *testing.T) {
	cfg := quickConfig()
	ds, _ := DatasetByName("RMAT")
	alg, _ := ccalg.ByName("rc")
	o := Run(ds, alg, cfg, 0)
	if o.Err != nil || o.DNF {
		t.Fatalf("outcome: %+v", o)
	}
	if o.MeanSecs <= 0 || o.Rounds == 0 || o.Components == 0 || o.InputBytes == 0 {
		t.Fatalf("metrics not populated: %+v", o)
	}
}

func TestRunDNF(t *testing.T) {
	cfg := quickConfig()
	ds, _ := DatasetByName("Path100M")
	alg, _ := ccalg.ByName("hm")
	o := Run(ds, alg, cfg, 1<<20) // 1 MiB wall
	if !o.DNF {
		t.Fatalf("Hash-to-Min on a path under a 1 MiB wall did not DNF: %+v", o)
	}
}

func TestMeanStddev(t *testing.T) {
	m, s := meanStddev(nil)
	if m != 0 || s != 0 {
		t.Fatal("empty input")
	}
	m, s = meanStddev([]float64{5})
	if m != 5 || s != 0 {
		t.Fatal("single input")
	}
	m, s = meanStddev([]float64{1, 2, 3})
	if m != 2 || s <= 0.9 || s >= 1.1 {
		t.Fatalf("mean %v stddev %v", m, s)
	}
	o := Outcome{MeanSecs: 2, StddevSecs: 0.1}
	if r := o.RelStddev(); r != 5 {
		t.Fatalf("rel stddev %v", r)
	}
}

func TestTables12Render(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	for _, want := range []string{"Randomised Contraction", "Hash-to-Min", "Two-Phase", "Cracker", "O(log |V|)"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table1 missing %q:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	Table2(&buf, quickConfig())
	for _, want := range []string{"Andromeda", "PathUnion10", "components"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table2 missing %q", want)
		}
	}
}

// TestMiniCampaign runs the Tables III–V pipeline end to end at tiny scale
// on two datasets by reusing the cell runner and formatters.
func TestMiniCampaign(t *testing.T) {
	cfg := quickConfig()
	camp := &Campaign{Config: cfg}
	for _, name := range []string{"RMAT", "PathUnion10"} {
		ds, _ := DatasetByName(name)
		for _, alg := range TableAlgorithms() {
			camp.Cells = append(camp.Cells, Run(ds, alg, cfg, 0))
		}
	}
	var buf bytes.Buffer
	Table3(&buf, camp)
	Table4(&buf, camp)
	Table5(&buf, camp)
	Figure6(&buf, camp)
	out := buf.String()
	for _, want := range []string{"TABLE III", "TABLE IV", "TABLE V", "FIGURE 6", "RMAT", "PathUnion10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("campaign output missing %q", want)
		}
	}
	if strings.Contains(out, "ERR") {
		t.Fatalf("campaign reported an error:\n%s", out)
	}
	// Every completed cell must be verified (cfg.Verify) and have data.
	for _, o := range camp.Cells {
		if o.Err != nil {
			t.Fatalf("cell %s/%s error: %v", o.Dataset, o.Algorithm, o.Err)
		}
	}
}

func TestFigure5Render(t *testing.T) {
	var buf bytes.Buffer
	Figure5(&buf, quickConfig())
	out := buf.String()
	if !strings.Contains(out, "Andromeda") || !strings.Contains(out, "Bitcoin addresses") {
		t.Fatalf("Figure5 output incomplete:\n%s", out)
	}
}

func TestMeasureGammaBounds(t *testing.T) {
	// Statistical check of Thm 1 / App. B on random graphs: E[γ] ≤ 3/4
	// for the affine method, ≤ 2/3 under full randomisation (with noise
	// margins).
	rng := xrand.New(5)
	var ff, fr float64
	const trials = 30
	for i := 0; i < trials; i++ {
		g, _ := DatasetByName("RMAT")
		gg := g.Gen(0.02, rng.Uint64())
		ff += MeasureGamma(gg, rng, false)
		fr += MeasureGamma(gg, rng, true)
	}
	ff /= trials
	fr /= trials
	if ff > 0.78 {
		t.Fatalf("finite-field γ = %.3f exceeds 3/4 bound", ff)
	}
	if fr > 0.70 {
		t.Fatalf("full-random γ = %.3f exceeds 2/3 bound", fr)
	}
}

func TestExperimentsRender(t *testing.T) {
	cfg := quickConfig()
	var buf bytes.Buffer
	GammaExperiment(&buf, 3, 1)
	if !strings.Contains(buf.String(), "γ") {
		t.Fatal("gamma experiment produced no output")
	}
	buf.Reset()
	VariantsExperiment(&buf, cfg)
	if !strings.Contains(buf.String(), "fig3-safe") || strings.Contains(buf.String(), "error") {
		t.Fatalf("variants experiment output:\n%s", buf.String())
	}
	buf.Reset()
	MethodsExperiment(&buf, cfg)
	for _, m := range []string{"finite-fields", "gf-prime", "encryption", "random-reals"} {
		if !strings.Contains(buf.String(), m) {
			t.Fatalf("methods experiment missing %s:\n%s", m, buf.String())
		}
	}
	buf.Reset()
	SegmentsExperiment(&buf, cfg)
	if strings.Contains(buf.String(), "error") {
		t.Fatalf("segments experiment:\n%s", buf.String())
	}
}

func TestSquaringBlowup(t *testing.T) {
	// Sec. IV: on a path, iterated squaring must pass through a state with
	// far more edges than the input (quadratic blow-up).
	g := datagen.Path(128)
	maxEdges := squaringMaxEdges(g)
	if maxEdges < 20*g.NumEdges() {
		t.Fatalf("squaring peak %d edges on a %d-edge path; expected a quadratic blow-up",
			maxEdges, g.NumEdges())
	}
}

func TestAppendixBCensus(t *testing.T) {
	rng := xrand.New(3)
	// Directed 3-cycle: Thm 2's tight case — every labelling yields
	// exactly 2 representatives, so E[reps]/n = 2/3 exactly.
	out := [][]int64{{1}, {2}, {0}}
	const trials = 2000
	reps := 0
	for i := 0; i < trials; i++ {
		_, _, _, r := typeCensus(out, rng)
		reps += r
	}
	if got := float64(reps) / trials / 3; got < 0.666 || got > 0.667 {
		t.Fatalf("3-cycle E[reps]/n = %.4f, want exactly 2/3", got)
	}
	// Lemma 1 on random functional graphs: E[type1] ≤ E[type0] (allowing
	// sampling noise).
	var rt0, rt1 float64
	for i := 0; i < 500; i++ {
		outR := make([][]int64, 20)
		for v := range outR {
			w := int64(rng.Uint64n(20))
			for w == int64(v) {
				w = int64(rng.Uint64n(20))
			}
			outR[v] = []int64{w}
		}
		a, b, _, _ := typeCensus(outR, rng)
		rt0 += float64(a)
		rt1 += float64(b)
	}
	if rt1 > rt0*1.02 {
		t.Fatalf("Lemma 1 violated: E[type1]=%.2f > E[type0]=%.2f", rt1/500, rt0/500)
	}
}

func TestAppendixBExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	AppendixBExperiment(&buf, 200, 1)
	if !strings.Contains(buf.String(), "directed-3-cycle") {
		t.Fatalf("appendix B experiment:\n%s", buf.String())
	}
}

func TestNaiveExperimentRenders(t *testing.T) {
	var buf bytes.Buffer
	NaiveExperiment(&buf, quickConfig())
	if !strings.Contains(buf.String(), "BFS rounds") || strings.Contains(buf.String(), "error") {
		t.Fatalf("naive experiment:\n%s", buf.String())
	}
}
