// Package blowfish implements the Blowfish block cipher (Schneier, 1993),
// which the paper proposes as the "encryption method" for randomising vertex
// order: with a fresh key per contraction round, eₖ is a pseudo-random
// bijection on 64-bit vertex IDs, and only the key — not a table of random
// numbers — has to be distributed across the cluster.
//
// Blowfish's P-array and S-boxes are defined as the leading 8336 fractional
// hexadecimal digits of π. Rather than embedding the 4 KiB constant tables,
// this package computes the digits exactly at first use with fixed-point
// big-integer arithmetic and Machin's formula; the published test vectors in
// blowfish_test.go confirm bit-exactness.
package blowfish

import (
	"math/big"
	"sync"
)

// piWords returns the first n 32-bit words of the fractional part of π in
// hexadecimal, most significant first: 0x243f6a88, 0x85a308d3, ...
func piWords(n int) []uint32 {
	bits := uint(32*n + 64) // 64 guard bits against truncation error
	pi := machinPi(bits)
	// Drop the integer part (3) to keep the fraction, then read 32-bit
	// words from the most significant end.
	frac := new(big.Int).Mod(pi, new(big.Int).Lsh(big.NewInt(1), bits))
	words := make([]uint32, n)
	for i := 0; i < n; i++ {
		shift := bits - uint(32*(i+1))
		w := new(big.Int).Rsh(frac, shift)
		words[i] = uint32(w.Uint64() & 0xffffffff)
	}
	return words
}

// machinPi returns π in fixed point scaled by 2^bits, via
// π = 16·atan(1/5) − 4·atan(1/239).
func machinPi(bits uint) *big.Int {
	pi := new(big.Int).Mul(atanInv(5, bits), big.NewInt(16))
	pi.Sub(pi, new(big.Int).Mul(atanInv(239, bits), big.NewInt(4)))
	return pi
}

// atanInv returns atan(1/x) in fixed point scaled by 2^bits, by the
// alternating Gregory series Σ (−1)^k / ((2k+1)·x^(2k+1)).
func atanInv(x int64, bits uint) *big.Int {
	one := new(big.Int).Lsh(big.NewInt(1), bits)
	term := new(big.Int).Div(one, big.NewInt(x))
	sum := new(big.Int).Set(term)
	xx := big.NewInt(x * x)
	t := new(big.Int)
	for k := int64(1); ; k++ {
		term.Div(term, xx)
		if term.Sign() == 0 {
			break
		}
		t.Div(term, big.NewInt(2*k+1))
		if k%2 == 1 {
			sum.Sub(sum, t)
		} else {
			sum.Add(sum, t)
		}
	}
	return sum
}

// initialState holds the π-derived P-array and S-boxes every cipher starts
// its key schedule from.
type initialState struct {
	p [18]uint32
	s [4][256]uint32
}

var (
	initOnce  sync.Once
	initBoxes initialState
)

// piBoxes computes (once) and returns the shared π-derived initial state.
func piBoxes() *initialState {
	initOnce.Do(func() {
		words := piWords(18 + 4*256)
		copy(initBoxes.p[:], words[:18])
		words = words[18:]
		for i := 0; i < 4; i++ {
			copy(initBoxes.s[i][:], words[:256])
			words = words[256:]
		}
	})
	return &initBoxes
}
