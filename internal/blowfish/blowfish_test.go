package blowfish

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// TestPiDigits verifies the π-derived constants against the well-known
// leading values of the Blowfish P-array.
func TestPiDigits(t *testing.T) {
	want := []uint32{0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344,
		0xa4093822, 0x299f31d0, 0x082efa98, 0xec4e6c89}
	got := piBoxes().p[:8]
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("P[%d] = %#08x, want %#08x", i, got[i], w)
		}
	}
}

// Published Blowfish test vectors (Schneier's variable-key set).
var vectors = []struct {
	key, plain, cipher uint64
}{
	{0x0000000000000000, 0x0000000000000000, 0x4EF997456198DD78},
	{0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x51866FD5B85ECB8A},
	{0x3000000000000000, 0x1000000000000001, 0x7D856F9A613063F2},
	{0x1111111111111111, 0x1111111111111111, 0x2466DD878B963C9D},
	{0x0123456789ABCDEF, 0x1111111111111111, 0x61F9C3802281B096},
	{0xFEDCBA9876543210, 0x0123456789ABCDEF, 0x0ACEAB0FC6A0A28D},
}

func TestVectors(t *testing.T) {
	for _, v := range vectors {
		c := NewFromUint64(v.key)
		if got := c.Encrypt64(v.plain); got != v.cipher {
			t.Errorf("key %016X: Encrypt64(%016X) = %016X, want %016X",
				v.key, v.plain, got, v.cipher)
		}
		if got := c.Decrypt64(v.cipher); got != v.plain {
			t.Errorf("key %016X: Decrypt64(%016X) = %016X, want %016X",
				v.key, v.cipher, got, v.plain)
		}
	}
}

func TestEncryptDecryptBytes(t *testing.T) {
	c, err := New([]byte("round key"))
	if err != nil {
		t.Fatal(err)
	}
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	dst := make([]byte, 8)
	c.Encrypt(dst, src)
	back := make([]byte, 8)
	c.Decrypt(back, dst)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("roundtrip mismatch: %v -> %v -> %v", src, dst, back)
		}
	}
	// Byte and uint64 forms must agree.
	x := binary.BigEndian.Uint64(src)
	if got := c.Encrypt64(x); got != binary.BigEndian.Uint64(dst) {
		t.Fatalf("Encrypt64 disagrees with Encrypt: %016X vs %x", got, dst)
	}
}

func TestKeySizes(t *testing.T) {
	for _, n := range []int{0, 57} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key succeeded, want error", n)
		}
	}
	for _, n := range []int{1, 8, 16, 56} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("New with %d-byte key failed: %v", n, err)
		}
	}
}

// TestBijection property-checks that Encrypt64 is invertible (hence
// injective), the property the randomisation method relies on.
func TestBijection(t *testing.T) {
	c := NewFromUint64(0xdeadbeefcafebabe)
	err := quick.Check(func(x uint64) bool {
		return c.Decrypt64(c.Encrypt64(x)) == x
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

// TestKeysDiffer ensures different round keys give different permutations.
func TestKeysDiffer(t *testing.T) {
	c1 := NewFromUint64(1)
	c2 := NewFromUint64(2)
	same := 0
	for x := uint64(0); x < 64; x++ {
		if c1.Encrypt64(x) == c2.Encrypt64(x) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 agreement between distinct keys", same)
	}
}

func BenchmarkEncrypt64(b *testing.B) {
	c := NewFromUint64(42)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= c.Encrypt64(uint64(i))
	}
	sink = acc
}

func BenchmarkKeySchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewFromUint64(uint64(i))
	}
}

var sink uint64
