package blowfish

import (
	"encoding/binary"
	"errors"
)

// BlockSize is the Blowfish block size in bytes. The 64-bit block is what
// makes Blowfish a natural pseudo-random permutation over 64-bit vertex IDs.
const BlockSize = 8

// Cipher is an instance of Blowfish keyed with a particular key.
type Cipher struct {
	p [18]uint32
	s [4][256]uint32
}

// New creates a Cipher from a key of 1 to 56 bytes.
func New(key []byte) (*Cipher, error) {
	if len(key) < 1 || len(key) > 56 {
		return nil, errors.New("blowfish: invalid key size")
	}
	c := &Cipher{}
	init := piBoxes()
	c.p = init.p
	c.s = init.s
	c.expandKey(key)
	return c, nil
}

// NewFromUint64 creates a Cipher keyed with the big-endian bytes of k — the
// form used by the paper's encryption randomisation method, which draws one
// 64-bit key per contraction round.
func NewFromUint64(k uint64) *Cipher {
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], k)
	c, err := New(key[:])
	if err != nil {
		panic("blowfish: unreachable: 8-byte key rejected")
	}
	return c
}

// expandKey runs the Blowfish key schedule: XOR the key cyclically into the
// P-array, then repeatedly encrypt the all-zero block, replacing the P-array
// and S-box entries with the successive ciphertexts.
func (c *Cipher) expandKey(key []byte) {
	j := 0
	for i := 0; i < 18; i++ {
		var d uint32
		for k := 0; k < 4; k++ {
			d = d<<8 | uint32(key[j])
			j++
			if j >= len(key) {
				j = 0
			}
		}
		c.p[i] ^= d
	}
	var l, r uint32
	for i := 0; i < 18; i += 2 {
		l, r = c.encryptBlock(l, r)
		c.p[i], c.p[i+1] = l, r
	}
	for i := 0; i < 4; i++ {
		for k := 0; k < 256; k += 2 {
			l, r = c.encryptBlock(l, r)
			c.s[i][k], c.s[i][k+1] = l, r
		}
	}
}

// f is the Blowfish round function.
func (c *Cipher) f(x uint32) uint32 {
	return ((c.s[0][x>>24] + c.s[1][x>>16&0xff]) ^ c.s[2][x>>8&0xff]) + c.s[3][x&0xff]
}

// encryptBlock runs the 16-round Feistel network forward.
func (c *Cipher) encryptBlock(l, r uint32) (uint32, uint32) {
	for i := 0; i < 16; i += 2 {
		l ^= c.p[i]
		r ^= c.f(l)
		r ^= c.p[i+1]
		l ^= c.f(r)
	}
	l ^= c.p[16]
	r ^= c.p[17]
	return r, l
}

// decryptBlock runs the Feistel network backward.
func (c *Cipher) decryptBlock(l, r uint32) (uint32, uint32) {
	for i := 16; i > 0; i -= 2 {
		l ^= c.p[i+1]
		r ^= c.f(l)
		r ^= c.p[i]
		l ^= c.f(r)
	}
	l ^= c.p[1]
	r ^= c.p[0]
	return r, l
}

// Encrypt encrypts the 8-byte block src into dst (which may alias src).
func (c *Cipher) Encrypt(dst, src []byte) {
	l := binary.BigEndian.Uint32(src[0:4])
	r := binary.BigEndian.Uint32(src[4:8])
	l, r = c.encryptBlock(l, r)
	binary.BigEndian.PutUint32(dst[0:4], l)
	binary.BigEndian.PutUint32(dst[4:8], r)
}

// Decrypt decrypts the 8-byte block src into dst (which may alias src).
func (c *Cipher) Decrypt(dst, src []byte) {
	l := binary.BigEndian.Uint32(src[0:4])
	r := binary.BigEndian.Uint32(src[4:8])
	l, r = c.decryptBlock(l, r)
	binary.BigEndian.PutUint32(dst[0:4], l)
	binary.BigEndian.PutUint32(dst[4:8], r)
}

// Encrypt64 applies the cipher to a 64-bit value, treating its big-endian
// bytes as one block. For a fixed key this is a bijection on uint64 — the
// pseudo-random vertex relabelling eₖ(w) of the paper's encryption method.
func (c *Cipher) Encrypt64(x uint64) uint64 {
	l, r := c.encryptBlock(uint32(x>>32), uint32(x))
	return uint64(l)<<32 | uint64(r)
}

// Decrypt64 inverts Encrypt64.
func (c *Cipher) Decrypt64(x uint64) uint64 {
	l, r := c.decryptBlock(uint32(x>>32), uint32(x))
	return uint64(l)<<32 | uint64(r)
}
