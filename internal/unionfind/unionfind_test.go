package unionfind

import (
	"testing"

	"dbcc/internal/datagen"
	"dbcc/internal/graph"
	"dbcc/internal/xrand"
)

func TestBasicUnions(t *testing.T) {
	d := New(0)
	d.Union(1, 2)
	d.Union(3, 4)
	if d.Find(1) != d.Find(2) {
		t.Fatal("1 and 2 not merged")
	}
	if d.Find(1) == d.Find(3) {
		t.Fatal("1 and 3 merged spuriously")
	}
	d.Union(2, 3)
	if d.Find(1) != d.Find(4) {
		t.Fatal("transitive merge failed")
	}
	if d.Vertices() != 4 {
		t.Fatalf("vertices %d", d.Vertices())
	}
}

func TestSelfUnion(t *testing.T) {
	d := New(0)
	d.Union(7, 7)
	if d.Find(7) != 7 || d.Vertices() != 1 {
		t.Fatal("self union misbehaved")
	}
}

func TestComponentsPath(t *testing.T) {
	l := Components(datagen.Path(100))
	if got := l.NumComponents(); got != 1 {
		t.Fatalf("path has %d components", got)
	}
	if len(l) != 100 {
		t.Fatalf("labelled %d vertices", len(l))
	}
}

func TestComponentsPathUnion(t *testing.T) {
	g := datagen.PathUnion(10, 2000)
	if got := CountComponents(g); got != 10 {
		t.Fatalf("PathUnion(10) has %d components", got)
	}
}

func TestComponentsDisjointCliques(t *testing.T) {
	g := graph.New(0)
	for base := int64(0); base < 50; base += 10 {
		for i := int64(0); i < 4; i++ {
			for j := i + 1; j < 5; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	if got := CountComponents(g); got != 5 {
		t.Fatalf("%d components, want 5", got)
	}
}

// TestAgainstBruteForce checks the DSU against an O(V·E) label-propagation
// reference on random graphs.
func TestAgainstBruteForce(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 30; trial++ {
		n := int(rng.Uint64n(30)) + 2
		m := int(rng.Uint64n(60))
		g := datagen.ErdosRenyi(n, m+1, rng.Uint64())
		got := Components(g)

		// Brute force: propagate min label until fixpoint.
		label := make(map[int64]int64)
		for _, v := range g.Vertices() {
			label[v] = v
		}
		for changed := true; changed; {
			changed = false
			for _, e := range g.Edges {
				lv, lw := label[e.V], label[e.W]
				if lv < lw {
					label[e.W] = lv
					changed = true
				} else if lw < lv {
					label[e.V] = lw
					changed = true
				}
			}
		}
		want := graph.Labelling(label)
		if got.NumComponents() != want.NumComponents() {
			t.Fatalf("trial %d: %d components, want %d", trial, got.NumComponents(), want.NumComponents())
		}
		for v, lv := range want {
			for w, lw := range want {
				same := lv == lw
				if (got[v] == got[w]) != same {
					t.Fatalf("trial %d: vertices %d,%d grouping mismatch", trial, v, w)
				}
			}
		}
	}
}

// TestFindIterativeOnMillionChain builds a parent chain a million links
// deep by hand — deeper than any tree union-by-rank would ever produce —
// and calls Find on the tail. A recursive Find would overflow the stack
// here; the iterative one must survive and, by path compression, re-point
// every visited node directly at the root.
func TestFindIterativeOnMillionChain(t *testing.T) {
	const n = 1_000_000
	d := New(n)
	for v := int64(0); v < n; v++ {
		d.parent[v] = v + 1 // 0 → 1 → … → n
	}
	d.parent[n] = n

	if root := d.Find(0); root != n {
		t.Fatalf("Find(0) = %d, want %d", root, n)
	}
	for v := int64(0); v <= n; v++ {
		if d.parent[v] != n {
			t.Fatalf("path not compressed: parent[%d] = %d, want %d", v, d.parent[v], n)
		}
	}
}

// TestComponentsMillionPath is the hot-oracle stress: the DSU labels a
// 1e6-vertex path (the adversarial depth case) in one pass, and the maps
// are sized from the vertex count, not the edge count.
func TestComponentsMillionPath(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-vertex stress skipped in -short")
	}
	g := datagen.Path(1_000_000)
	l := Components(g)
	if got := l.NumComponents(); got != 1 {
		t.Fatalf("million-path has %d components", got)
	}
	if len(l) != 1_000_000 {
		t.Fatalf("labelled %d vertices", len(l))
	}
}
