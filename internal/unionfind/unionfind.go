// Package unionfind implements the classical Union/Find (disjoint-set
// union) structure with union by rank and path compression — the
// single-machine optimum the paper's introduction cites (inverse-Ackermann
// amortised time per edge). The reproduction uses it in two roles: as the
// sequential baseline the distributed algorithms are motivated against, and
// as the correctness oracle every algorithm's output is checked with.
package unionfind

import (
	"dbcc/internal/graph"
)

// DSU is a disjoint-set union over arbitrary int64 vertex IDs.
type DSU struct {
	parent map[int64]int64
	rank   map[int64]int8
}

// New returns an empty structure with capacity for n vertices.
func New(n int) *DSU {
	return &DSU{
		parent: make(map[int64]int64, n),
		rank:   make(map[int64]int8, n),
	}
}

// add registers a vertex as its own singleton set if unseen.
func (d *DSU) add(v int64) {
	if _, ok := d.parent[v]; !ok {
		d.parent[v] = v
	}
}

// Find returns the representative of v's set, registering v if needed.
// Path compression: every visited node is re-pointed at the root.
func (d *DSU) Find(v int64) int64 {
	d.add(v)
	root := v
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[v] != root {
		d.parent[v], v = root, d.parent[v]
	}
	return root
}

// Union merges the sets of v and w, by rank.
func (d *DSU) Union(v, w int64) {
	rv, rw := d.Find(v), d.Find(w)
	if rv == rw {
		return
	}
	switch {
	case d.rank[rv] < d.rank[rw]:
		d.parent[rv] = rw
	case d.rank[rv] > d.rank[rw]:
		d.parent[rw] = rv
	default:
		d.parent[rw] = rv
		d.rank[rv]++
	}
}

// Vertices returns the number of registered vertices.
func (d *DSU) Vertices() int { return len(d.parent) }

// Components computes the connected components of a graph sequentially and
// returns the resulting labelling (each vertex labelled by its set root).
func Components(g *graph.Graph) graph.Labelling {
	// Size from the vertex count: the maps hold one entry per vertex, and
	// on dense graphs an edge-count capacity over-allocates quadratically.
	d := New(g.NumVertices())
	for _, e := range g.Edges {
		d.Union(e.V, e.W)
	}
	l := make(graph.Labelling, len(d.parent))
	for v := range d.parent {
		l[v] = d.Find(v)
	}
	return l
}

// CountComponents returns the number of connected components of g.
func CountComponents(g *graph.Graph) int {
	return Components(g).NumComponents()
}
