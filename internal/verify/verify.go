// Package verify checks connected-component labellings for correctness.
// The paper defines a correct output as one where two vertices share a
// label if and only if they belong to the same connected component
// (Sec. III); label values themselves are arbitrary. Equivalence is
// therefore partition equality: a bijection must exist between the label
// sets of the candidate and the oracle that respects the grouping.
package verify

import (
	"fmt"

	"dbcc/internal/graph"
	"dbcc/internal/unionfind"
)

// Labelling checks a candidate labelling of g against the Union/Find
// oracle. It returns nil if the candidate is a correct connected-components
// labelling, and a descriptive error otherwise.
func Labelling(g *graph.Graph, candidate graph.Labelling) error {
	oracle := unionfind.Components(g)
	return Equivalent(candidate, oracle)
}

// Equivalent reports whether two labellings describe the same partition of
// the same vertex set.
func Equivalent(a, b graph.Labelling) error {
	if len(a) != len(b) {
		return fmt.Errorf("verify: labellings cover %d and %d vertices", len(a), len(b))
	}
	aToB := make(map[int64]int64)
	bToA := make(map[int64]int64)
	for v, la := range a {
		lb, ok := b[v]
		if !ok {
			return fmt.Errorf("verify: vertex %d missing from second labelling", v)
		}
		if prev, seen := aToB[la]; seen {
			if prev != lb {
				return fmt.Errorf("verify: label %d maps to both %d and %d (vertex %d): components merged or split",
					la, prev, lb, v)
			}
		} else {
			aToB[la] = lb
		}
		if prev, seen := bToA[lb]; seen {
			if prev != la {
				return fmt.Errorf("verify: label %d maps back to both %d and %d (vertex %d): components merged or split",
					lb, prev, la, v)
			}
		} else {
			bToA[lb] = la
		}
	}
	return nil
}
