package verify

import (
	"testing"

	"dbcc/internal/datagen"
	"dbcc/internal/graph"
)

func TestEquivalentAcceptsRelabelling(t *testing.T) {
	a := graph.Labelling{1: 10, 2: 10, 3: 30}
	b := graph.Labelling{1: 7, 2: 7, 3: 8}
	if err := Equivalent(a, b); err != nil {
		t.Fatalf("relabelled partition rejected: %v", err)
	}
}

func TestEquivalentRejectsSplit(t *testing.T) {
	a := graph.Labelling{1: 10, 2: 10}
	b := graph.Labelling{1: 7, 2: 8}
	if err := Equivalent(a, b); err == nil {
		t.Fatal("split partition accepted")
	}
}

func TestEquivalentRejectsMerge(t *testing.T) {
	a := graph.Labelling{1: 10, 2: 20}
	b := graph.Labelling{1: 7, 2: 7}
	if err := Equivalent(a, b); err == nil {
		t.Fatal("merged partition accepted")
	}
}

func TestEquivalentRejectsDifferentVertexSets(t *testing.T) {
	a := graph.Labelling{1: 10}
	b := graph.Labelling{2: 10}
	if err := Equivalent(a, b); err == nil {
		t.Fatal("different vertex sets accepted")
	}
	c := graph.Labelling{1: 10, 2: 20}
	if err := Equivalent(a, c); err == nil {
		t.Fatal("different sizes accepted")
	}
}

func TestLabellingAgainstOracle(t *testing.T) {
	g := datagen.PathUnion(3, 30)
	// A correct labelling: label every vertex by its true component.
	good := make(graph.Labelling)
	comp := make(map[int64]int64)
	// Walk edges to build components naively (paths are ordered).
	for _, e := range g.Edges {
		if c, ok := comp[e.V]; ok {
			comp[e.W] = c
		} else if c, ok := comp[e.W]; ok {
			comp[e.V] = c
		} else {
			comp[e.V] = e.V
			comp[e.W] = e.V
		}
	}
	for v, c := range comp {
		good[v] = c + 1000 // arbitrary relabelling
	}
	if err := Labelling(g, good); err != nil {
		t.Fatalf("correct labelling rejected: %v", err)
	}
	// Corrupt one vertex.
	for v := range good {
		good[v] = -12345
		break
	}
	if err := Labelling(g, good); err == nil {
		t.Fatal("corrupted labelling accepted")
	}
}
