package gf

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0b1010, 0b0110) != 0b1100 {
		t.Fatal("Add is not xor")
	}
	if Add(42, 42) != 0 {
		t.Fatal("element not its own additive inverse")
	}
}

func TestMulIdentity(t *testing.T) {
	for _, x := range []uint64{0, 1, 2, 0x1b, 1 << 63, ^uint64(0)} {
		if Mul(1, x) != x {
			t.Errorf("1·%#x = %#x, want %#x", x, Mul(1, x), x)
		}
		if Mul(x, 1) != x {
			t.Errorf("%#x·1 = %#x, want %#x", x, Mul(x, 1), x)
		}
		if Mul(0, x) != 0 || Mul(x, 0) != 0 {
			t.Errorf("0·%#x != 0", x)
		}
	}
}

func TestMulByXReduces(t *testing.T) {
	// x^63 · x = x^64 ≡ IrrPoly.
	if got := Mul(1<<63, 2); got != IrrPoly {
		t.Fatalf("x^63·x = %#x, want %#x", got, IrrPoly)
	}
}

// TestMulMatchesPaperC checks Mul against an independent transliteration of
// the paper's Fig. 7 C routine (roles of a and x swapped, which must not
// matter in a commutative ring).
func TestMulMatchesPaperC(t *testing.T) {
	ref := func(a, x uint64) uint64 {
		var r uint64
		for x != 0 {
			if x&1 != 0 {
				r ^= a
			}
			x >>= 1
			if a&(1<<63) != 0 {
				a = a<<1 ^ 0x1b
			} else {
				a <<= 1
			}
		}
		return r
	}
	err := quick.Check(func(a, x uint64) bool {
		return Mul(a, x) == ref(x, a) // commuted arguments
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(func(a, b uint64) bool { return Mul(a, b) == Mul(b, a) }, cfg); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	if err := quick.Check(func(a, b, c uint64) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	if err := quick.Check(func(a, b, c uint64) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

func TestInv(t *testing.T) {
	cases := []uint64{1, 2, 3, 0x1b, 1 << 63, ^uint64(0), 0xdeadbeefcafebabe}
	for _, a := range cases {
		inv := Inv(a)
		if got := Mul(a, inv); got != 1 {
			t.Errorf("a·Inv(a) = %#x for a=%#x, want 1", got, a)
		}
	}
	err := quick.Check(func(a uint64) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestAxBBijective(t *testing.T) {
	// For a ≠ 0 the map x ↦ a·x+b must be injective; verify by explicit
	// inversion on random points.
	err := quick.Check(func(a, x, b uint64) bool {
		if a == 0 {
			a = 1
		}
		y := AxB(a, x, b)
		back := Mul(Inv(a), Add(y, b))
		return back == x
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiplierMatchesMul(t *testing.T) {
	for _, a := range []uint64{0, 1, 2, 0x1b, 1 << 63, 0x0123456789abcdef} {
		m := NewMultiplier(a)
		if m.A() != a {
			t.Fatalf("A() = %#x, want %#x", m.A(), a)
		}
		err := quick.Check(func(x uint64) bool { return m.Mul(x) == Mul(a, x) },
			&quick.Config{MaxCount: 200})
		if err != nil {
			t.Fatalf("a=%#x: %v", a, err)
		}
	}
}

func TestAffine(t *testing.T) {
	h := NewAffine(0x9e3779b97f4a7c15, 0x1234)
	inv := h.Inverse()
	for _, x := range []uint64{0, 1, 42, ^uint64(0)} {
		if got := inv.Apply(h.Apply(x)); got != x {
			t.Errorf("inverse(h(%d)) = %d", x, got)
		}
	}
	g := NewAffine(7, 9)
	comp := h.Compose(g)
	err := quick.Check(func(x uint64) bool {
		return comp.Apply(x) == h.Apply(g.Apply(x))
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAffineZeroAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAffine(0, b) did not panic")
		}
	}()
	NewAffine(0, 5)
}

func TestPrimeFieldBasics(t *testing.T) {
	p := PrimeP
	if AddP(p-1, 1) != 0 {
		t.Fatal("AddP wraparound")
	}
	if AddP(p-1, p-1) != p-2 {
		t.Fatal("AddP with carry")
	}
	if MulP(1, 12345) != 12345 {
		t.Fatal("MulP identity")
	}
	if MulP(p-1, p-1) != 1 {
		// (−1)·(−1) = 1
		t.Fatal("MulP (p-1)^2 != 1")
	}
	if SubP(3, 5) != p-2 {
		t.Fatal("SubP wraparound")
	}
}

func TestInvP(t *testing.T) {
	err := quick.Check(func(a uint64) bool {
		a %= PrimeP
		if a == 0 {
			return true
		}
		return MulP(a, InvP(a)) == 1
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAxBPBijective(t *testing.T) {
	err := quick.Check(func(a, x, b uint64) bool {
		a %= PrimeP
		x %= PrimeP
		b %= PrimeP
		if a == 0 {
			a = 1
		}
		y := AxBP(a, x, b)
		// x = a⁻¹·(y − b).
		back := MulP(InvP(a), SubP(y, b))
		return back == x
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mul(0x9e3779b97f4a7c15, uint64(i))
	}
	sink = acc
}

func BenchmarkMultiplier(b *testing.B) {
	m := NewMultiplier(0x9e3779b97f4a7c15)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= m.Mul(uint64(i))
	}
	sink = acc
}

var sink uint64
