package gf

import "math/bits"

// The paper notes (Sec. V-C) that an SQL-only implementation can avoid
// GF(2^64) polynomial arithmetic by choosing a prime p larger than any
// vertex ID and working in GF(p) with ordinary integer arithmetic modulo p.
// This file provides that variant, used by the GF(p) randomisation method
// and by ablation A2.

// PrimeP is 2^64 − 59, the largest prime below 2^64, so that every 64-bit
// vertex ID this repository generates (all < 2^63) is a field element.
const PrimeP uint64 = 18446744073709551557

// MulP returns a·b mod PrimeP, using a 128-bit intermediate product.
func MulP(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, PrimeP)
	return rem
}

// AddP returns a+b mod PrimeP.
func AddP(a, b uint64) uint64 {
	s, carry := bits.Add64(a, b, 0)
	if carry == 1 || s >= PrimeP {
		s -= PrimeP
	}
	return s
}

// SubP returns a−b mod PrimeP.
func SubP(a, b uint64) uint64 {
	d, borrow := bits.Sub64(a, b, 0)
	if borrow == 1 {
		d += PrimeP
	}
	return d
}

// AxBP returns a·x + b mod PrimeP, the GF(p) analogue of AxB. For
// a ≢ 0 (mod p) it is a bijection on [0, p).
func AxBP(a, x, b uint64) uint64 { return AddP(MulP(a, x), b) }

// InvP returns the multiplicative inverse of a mod PrimeP via Fermat's
// little theorem (a^(p−2)). It panics for a ≡ 0.
func InvP(a uint64) uint64 {
	a %= PrimeP
	if a == 0 {
		panic("gf: zero has no inverse mod p")
	}
	exp := PrimeP - 2
	result := uint64(1)
	base := a
	for exp > 0 {
		if exp&1 == 1 {
			result = MulP(result, base)
		}
		base = MulP(base, base)
		exp >>= 1
	}
	return result
}
