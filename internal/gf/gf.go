// Package gf implements arithmetic over the finite field GF(2^64), the
// field the paper's finite-fields randomisation method operates in.
//
// Elements of GF(2^64) are represented as uint64 values whose bits are the
// coefficients of a binary polynomial of degree < 64. Addition is XOR;
// multiplication is carry-less polynomial multiplication reduced modulo the
// irreducible polynomial
//
//	x^64 + x^4 + x^3 + x + 1
//
// which is the same modulus used by the paper's C user-defined function
// axplusb (Fig. 7, constant IRRPOLY = 0x1b).
//
// The central operation is AxB(a, x, b) = a·x + b, which for a ≠ 0 is a
// bijection on GF(2^64) and therefore induces a pseudo-random relabelling of
// 64-bit vertex IDs. Inv computes multiplicative inverses, so the bijection
// can be explicitly inverted (x = a⁻¹·(y + b)).
package gf

// IrrPoly is the low part of the irreducible reduction polynomial
// x^64 + x^4 + x^3 + x + 1: the term x^64 is implicit, the remaining
// coefficients are 0x1b = x^4 + x^3 + x + 1.
const IrrPoly uint64 = 0x1b

// Add returns a + b in GF(2^64). Addition of binary polynomials is XOR;
// every element is its own additive inverse, so Add is also subtraction.
func Add(a, b uint64) uint64 { return a ^ b }

// Mul returns a · b in GF(2^64), using the shift-and-add schoolbook method
// of the paper's Fig. 7 C code: for each set bit of x accumulate a, doubling
// a (shift, reduce) at every step.
func Mul(a, x uint64) uint64 {
	var r uint64
	for x != 0 {
		if x&1 != 0 {
			r ^= a
		}
		x >>= 1
		if a&(1<<63) != 0 {
			a = a<<1 ^ IrrPoly
		} else {
			a <<= 1
		}
	}
	return r
}

// mulTables holds 16 tables of 256 entries each for table-driven
// multiplication: mulTables[i][v] = mulBase · (v · x^(8i)) for the base
// element the tables were built for. See NewMultiplier.
type mulTables [8][256]uint64

// Multiplier precomputes multiplication by a fixed element of GF(2^64),
// turning the 64-iteration bit loop of Mul into 8 table lookups. The engine
// uses one Multiplier per contraction round, since every round multiplies
// millions of vertex IDs by the same random A.
type Multiplier struct {
	tab mulTables
	a   uint64
}

// NewMultiplier returns a Multiplier computing a·x for arbitrary x.
func NewMultiplier(a uint64) *Multiplier {
	m := &Multiplier{a: a}
	// shifted[k] = a · x^k for k = 0..7 within a byte, recomputed per byte
	// position below. Build tab[i][v] = a · (v << 8i) by accumulating the
	// contribution of each bit of v.
	base := a
	for i := 0; i < 8; i++ {
		// powers[k] = a · x^(8i+k)
		var powers [8]uint64
		p := base
		for k := 0; k < 8; k++ {
			powers[k] = p
			if p&(1<<63) != 0 {
				p = p<<1 ^ IrrPoly
			} else {
				p <<= 1
			}
		}
		for v := 0; v < 256; v++ {
			var r uint64
			for k := 0; k < 8; k++ {
				if v&(1<<k) != 0 {
					r ^= powers[k]
				}
			}
			m.tab[i][v] = r
		}
		base = p
	}
	return m
}

// A returns the fixed multiplicand this Multiplier was built for.
func (m *Multiplier) A() uint64 { return m.a }

// Mul returns a·x using the precomputed tables.
func (m *Multiplier) Mul(x uint64) uint64 {
	return m.tab[0][x&0xff] ^
		m.tab[1][(x>>8)&0xff] ^
		m.tab[2][(x>>16)&0xff] ^
		m.tab[3][(x>>24)&0xff] ^
		m.tab[4][(x>>32)&0xff] ^
		m.tab[5][(x>>40)&0xff] ^
		m.tab[6][(x>>48)&0xff] ^
		m.tab[7][(x>>56)&0xff]
}

// AxB returns a·x + b in GF(2^64): the paper's axplusb user-defined
// function. For a ≠ 0 this is a bijection on uint64.
func AxB(a, x, b uint64) uint64 { return Mul(a, x) ^ b }

// AxB returns a·x + b using the precomputed tables.
func (m *Multiplier) AxB(x, b uint64) uint64 { return m.Mul(x) ^ b }

// deg returns the degree of the polynomial p, or -1 for p = 0.
func deg(p uint64) int {
	if p == 0 {
		return -1
	}
	d := 0
	for p > 1 {
		p >>= 1
		d++
	}
	return d
}

// Inv returns the multiplicative inverse of a in GF(2^64). It panics if
// a = 0, which has no inverse. The implementation is the extended Euclidean
// algorithm on binary polynomials, run against the 65-bit modulus; the first
// division step is unrolled because the modulus does not fit in a uint64.
func Inv(a uint64) uint64 {
	if a == 0 {
		panic("gf: zero has no multiplicative inverse")
	}
	if a == 1 {
		return 1
	}
	// Maintain r0 = modulus, r1 = a with Bézout coefficients t0, t1 such
	// that ti·a ≡ ri (mod modulus). The modulus is x^64 + IrrPoly; its
	// remainder mod a is computed by the first unrolled step.
	//
	// First step: divide x^64 + IrrPoly by a.
	// quotient q, remainder rem of (x^64 + IrrPoly) / a.
	da := deg(a)
	// First subtract a·x^(64-da): a has degree da, so a<<(64-da) puts its
	// leading bit at position 64, which the uint64 shift discards — exactly
	// the cancellation of the modulus' implicit x^64 term.
	shift := uint(64 - da)
	rem := IrrPoly ^ (a << shift)
	q := uint64(1) << shift
	// Continue ordinary polynomial division of rem by a.
	for deg(rem) >= da {
		s := deg(rem) - da
		rem ^= a << s
		q |= 1 << s
	}
	// Now modulus = q·a + rem. Invariants: t0·a ≡ modulus-part, standard
	// extended Euclid from here on with r0 = a, r1 = rem,
	// t0 = 1, t1 = q (since rem = modulus + q·a ≡ q·a (mod modulus),
	// as addition and subtraction coincide).
	r0, r1 := a, rem
	t0, t1 := uint64(1), q
	for r1 != 0 {
		// Divide r0 by r1: r0 = q2·r1 + r2.
		q2 := uint64(0)
		r2 := r0
		d1 := deg(r1)
		for deg(r2) >= d1 {
			s := deg(r2) - d1
			r2 ^= r1 << s
			q2 |= 1 << s
		}
		t2 := t0 ^ polyMulMod(q2, t1)
		r0, r1 = r1, r2
		t0, t1 = t1, t2
	}
	if r0 != 1 {
		// Cannot happen: the modulus is irreducible, so gcd(a, mod) = 1.
		panic("gf: modulus not irreducible")
	}
	return t0
}

// polyMulMod returns a·b reduced modulo the field polynomial. It is Mul;
// kept as a distinct name inside Inv for clarity of the Euclid derivation.
func polyMulMod(a, b uint64) uint64 { return Mul(a, b) }

// Affine is a fixed pseudo-random bijection h(x) = A·x + B on GF(2^64),
// with its inverse available. One Affine per contraction round implements
// the finite fields randomisation method.
type Affine struct {
	m *Multiplier
	b uint64
}

// NewAffine returns the bijection h(x) = a·x + b. It panics if a = 0
// (a constant map is not a bijection).
func NewAffine(a, b uint64) *Affine {
	if a == 0 {
		panic("gf: affine map requires a != 0")
	}
	return &Affine{m: NewMultiplier(a), b: b}
}

// Apply returns h(x) = A·x + B.
func (h *Affine) Apply(x uint64) uint64 { return h.m.AxB(x, h.b) }

// A returns the multiplicative coefficient of the map.
func (h *Affine) A() uint64 { return h.m.A() }

// B returns the additive coefficient of the map.
func (h *Affine) B() uint64 { return h.b }

// Inverse returns the inverse bijection h⁻¹(y) = A⁻¹·(y + B).
func (h *Affine) Inverse() *Affine {
	ainv := Inv(h.m.A())
	return NewAffine(ainv, Mul(ainv, h.b))
}

// Compose returns the map x ↦ h(g(x)) = (A_h·A_g)·x + (A_h·B_g + B_h),
// which is again affine. The Fig. 4 algorithm composes the per-round maps
// back to front using exactly this identity.
func (h *Affine) Compose(g *Affine) *Affine {
	return NewAffine(Mul(h.A(), g.A()), AxB(h.A(), g.B(), h.b))
}
