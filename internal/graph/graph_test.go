package graph

import (
	"bytes"
	"strings"
	"testing"

	"dbcc/internal/engine"
)

func TestVerticesAndCounts(t *testing.T) {
	g := New(0)
	g.AddEdge(3, 1)
	g.AddEdge(1, 2)
	g.AddEdge(5, 5) // loop: isolated vertex
	vs := g.Vertices()
	want := []int64{1, 2, 3, 5}
	if len(vs) != len(want) {
		t.Fatalf("vertices %v", vs)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("vertices %v, want %v", vs, want)
		}
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("counts: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree %d, want 2", g.MaxDegree())
	}
}

func TestWriteRead(t *testing.T) {
	g := New(0)
	g.AddEdge(1, 2)
	g.AddEdge(100, 3)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != 2 || got.Edges[0] != (Edge{1, 2}) || got.Edges[1] != (Edge{100, 3}) {
		t.Fatalf("roundtrip %v", got.Edges)
	}
}

func TestReadCommentsAndErrors(t *testing.T) {
	g, err := Read(strings.NewReader("# comment\n1 2\n\n3\t4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("edges %v", g.Edges)
	}
	for _, bad := range []string{"1\n", "a b\n", "1 2 3\n"} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", bad)
		}
	}
}

func TestRandomizeIDsPreservesStructure(t *testing.T) {
	g := New(0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(7, 7)
	g.RandomizeIDs(99)
	if g.NumVertices() != 4 {
		t.Fatalf("vertex count changed: %d", g.NumVertices())
	}
	// Shared endpoint must stay shared.
	if g.Edges[0].W != g.Edges[1].V {
		t.Fatal("relabelling broke edge incidence")
	}
	// Loop must stay a loop.
	if g.Edges[2].V != g.Edges[2].W {
		t.Fatal("relabelling broke loop edge")
	}
	for _, e := range g.Edges {
		if e.V < 0 || e.W < 0 {
			t.Fatal("relabelling produced negative ID")
		}
	}
}

func TestRandomizeIDsDeterministic(t *testing.T) {
	a, b := New(0), New(0)
	a.AddEdge(1, 2)
	b.AddEdge(1, 2)
	a.RandomizeIDs(5)
	b.RandomizeIDs(5)
	if a.Edges[0] != b.Edges[0] {
		t.Fatal("same seed gave different relabellings")
	}
	c := New(0)
	c.AddEdge(1, 2)
	c.RandomizeIDs(6)
	if a.Edges[0] == c.Edges[0] {
		t.Fatal("different seeds gave identical relabellings")
	}
}

func TestLoad(t *testing.T) {
	c := engine.NewCluster(engine.Options{Segments: 3})
	g := New(0)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	if err := Load(c, "g", g); err != nil {
		t.Fatal(err)
	}
	rows, err := c.ReadAll("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("loaded %d rows", len(rows))
	}
	if err := Load(c, "g", g); err == nil {
		t.Fatal("double load succeeded")
	}
}

func TestLabellingFromRows(t *testing.T) {
	rows := []engine.Row{
		{engine.I(1), engine.I(10)},
		{engine.I(2), engine.I(10)},
		{engine.I(3), engine.I(30)},
	}
	l, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumComponents() != 2 {
		t.Fatalf("components %d", l.NumComponents())
	}
	sizes := l.ComponentSizes()
	if sizes[10] != 2 || sizes[30] != 1 {
		t.Fatalf("sizes %v", sizes)
	}
	// Conflicting duplicate must be rejected.
	bad := append(rows, engine.Row{engine.I(1), engine.I(99)})
	if _, err := FromRows(bad); err == nil {
		t.Fatal("conflicting labels accepted")
	}
	// NULLs must be rejected.
	if _, err := FromRows([]engine.Row{{engine.NullDatum, engine.I(1)}}); err == nil {
		t.Fatal("NULL vertex accepted")
	}
}
