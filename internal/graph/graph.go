// Package graph defines the edge-list graph representation the paper's
// problem statement uses (Sec. III): a graph is a table of two vertex-ID
// columns, one row per undirected edge, with isolated vertices representable
// as loop edges (v, v). The package provides text serialisation, loading
// into an engine table, vertex-ID randomisation (as the paper does for its
// image-derived datasets) and basic structural statistics.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"dbcc/internal/engine"
	"dbcc/internal/xrand"
)

// Edge is one undirected edge; (V, W) is the same edge as (W, V). A loop
// edge V == W represents an isolated vertex.
type Edge struct {
	V, W int64
}

// Graph is an edge-list graph.
type Graph struct {
	Edges []Edge
}

// New returns an empty graph with capacity for n edges.
func New(n int) *Graph { return &Graph{Edges: make([]Edge, 0, n)} }

// AddEdge appends an undirected edge.
func (g *Graph) AddEdge(v, w int64) { g.Edges = append(g.Edges, Edge{V: v, W: w}) }

// NumEdges returns the number of stored edge rows.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Vertices returns the sorted distinct vertex IDs appearing in the edge
// list (the deduced vertex set of Sec. III).
func (g *Graph) Vertices() []int64 {
	seen := make(map[int64]struct{}, len(g.Edges))
	for _, e := range g.Edges {
		seen[e.V] = struct{}{}
		seen[e.W] = struct{}{}
	}
	out := make([]int64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumVertices returns the number of distinct vertex IDs.
func (g *Graph) NumVertices() int {
	seen := make(map[int64]struct{}, len(g.Edges))
	for _, e := range g.Edges {
		seen[e.V] = struct{}{}
		seen[e.W] = struct{}{}
	}
	return len(seen)
}

// MaxDegree returns the largest vertex degree (loop edges count once).
func (g *Graph) MaxDegree() int {
	deg := make(map[int64]int)
	maxd := 0
	for _, e := range g.Edges {
		deg[e.V]++
		if e.V != e.W {
			deg[e.W]++
		}
		if deg[e.V] > maxd {
			maxd = deg[e.V]
		}
		if deg[e.W] > maxd {
			maxd = deg[e.W]
		}
	}
	return maxd
}

// RandomizeIDs relabels all vertices through a pseudo-random bijection on
// 64-bit IDs derived from seed, decoupling vertex numbering from the
// generation process — the treatment the paper applies to its image and
// R-MAT graphs. The relabelling keeps IDs non-negative so they remain valid
// in every randomisation method.
func (g *Graph) RandomizeIDs(seed uint64) {
	for i, e := range g.Edges {
		g.Edges[i] = Edge{V: scrambleID(e.V, seed), W: scrambleID(e.W, seed)}
	}
}

// scrambleID maps an ID through a keyed bijection on [0, 2^63).
// xrand.Mix64 is a bijection on uint64; XOR with the seed keys it, and a
// cycle-walk keeps the result in the non-negative int64 range.
func scrambleID(v int64, seed uint64) int64 {
	x := uint64(v)
	for {
		x = xrand.Mix64(x ^ seed)
		if x < 1<<63 {
			return int64(x)
		}
	}
}

// Write serialises the graph as tab-separated "v<TAB>w" lines.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a tab- or space-separated edge list, ignoring blank lines and
// lines starting with '#' (the SNAP dataset comment convention).
func Read(r io.Reader) (*Graph, error) {
	g := New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var a, b int64
		var err error
		f1, f2, ok := splitTwo(line)
		if !ok {
			return nil, fmt.Errorf("graph: line %d: expected two fields", lineNo)
		}
		if a, err = strconv.ParseInt(f1, 10, 64); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if b, err = strconv.ParseInt(f2, 10, 64); err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		g.AddEdge(a, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// splitTwo splits a line into exactly two whitespace-separated fields.
func splitTwo(line string) (string, string, bool) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' {
		j++
	}
	if j == i {
		return "", "", false
	}
	k := j
	for k < len(line) && (line[k] == ' ' || line[k] == '\t') {
		k++
	}
	l := k
	for l < len(line) && line[l] != ' ' && line[l] != '\t' {
		l++
	}
	if l == k {
		return "", "", false
	}
	for m := l; m < len(line); m++ {
		if line[m] != ' ' && line[m] != '\t' {
			return "", "", false
		}
	}
	return line[i:j], line[k:l], true
}

// Load materialises the graph as an engine table with columns (v1, v2)
// distributed by v1, the input format of all algorithms in this repository.
func Load(c *engine.Cluster, name string, g *Graph) error {
	if _, err := c.CreateTable(name, engine.Schema{"v1", "v2"}, 0); err != nil {
		return err
	}
	rows := make([]engine.Row, len(g.Edges))
	for i, e := range g.Edges {
		rows[i] = engine.Row{engine.I(e.V), engine.I(e.W)}
	}
	return c.InsertRows(name, rows)
}

// Labelling is the output of a connected-components algorithm: a component
// label per vertex. Two vertices are in the same component iff they share a
// label; label values themselves carry no meaning (Sec. III).
type Labelling map[int64]int64

// FromRows converts a (v, r) result table into a Labelling.
func FromRows(rows []engine.Row) (Labelling, error) {
	l := make(Labelling, len(rows))
	for _, row := range rows {
		if len(row) != 2 {
			return nil, fmt.Errorf("graph: labelling row has %d columns, want 2", len(row))
		}
		if row[0].Null || row[1].Null {
			return nil, fmt.Errorf("graph: labelling contains NULL: %v", row)
		}
		if prev, dup := l[row[0].Int]; dup && prev != row[1].Int {
			return nil, fmt.Errorf("graph: vertex %d labelled twice (%d and %d)", row[0].Int, prev, row[1].Int)
		}
		l[row[0].Int] = row[1].Int
	}
	return l, nil
}

// ComponentSizes returns the size of each component, keyed by label.
func (l Labelling) ComponentSizes() map[int64]int {
	sizes := make(map[int64]int)
	for _, r := range l {
		sizes[r]++
	}
	return sizes
}

// NumComponents returns the number of distinct components.
func (l Labelling) NumComponents() int { return len(l.ComponentSizes()) }
