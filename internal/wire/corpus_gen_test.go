package wire

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenFuzzCorpus rewrites testdata/fuzz/FuzzFrameCodec from the wire
// encoders, so the committed seeds stay canonical when the protocol
// changes. It is a no-op unless WIRE_REGEN_CORPUS=1:
//
//	WIRE_REGEN_CORPUS=1 go test -run TestRegenFuzzCorpus ./internal/wire
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("WIRE_REGEN_CORPUS") != "1" {
		t.Skip("set WIRE_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzFrameCodec")
	}
	seeds := map[string][]byte{
		"frame_hello":    AppendFrame(nil, Frame{Type: TypeHello, Payload: EncodeHello(Hello{Version: ProtocolVersion, Tenant: "acme", Token: "tok"})}),
		"frame_hello_ok": AppendFrame(nil, Frame{Type: TypeHelloOK, Payload: EncodeHelloOK(HelloOK{Version: ProtocolVersion, Namespace: "tn_acme_"})}),
		"frame_exec":     AppendFrame(nil, Frame{Type: TypeExec, Payload: []byte("DROP TABLE edges")}),
		"frame_query":    AppendFrame(nil, Frame{Type: TypeQuery, Payload: []byte("SELECT count(*) AS n FROM edges")}),
		"frame_cc":       AppendFrame(nil, Frame{Type: TypeCC, Payload: EncodeCC(CC{Table: "edges", Algorithm: "rc", Seed: 2019})}),
		"frame_done":     AppendFrame(nil, Frame{Type: TypeDone, Payload: EncodeDone(Done{Rows: 7, QueueNanos: 125000})}),
		"frame_cc_done":  AppendFrame(nil, Frame{Type: TypeCCDone, Payload: EncodeCCDone(CCDone{Components: 2, Rounds: 4, Vertices: 64})}),
		"frame_error":    AppendFrame(nil, Frame{Type: TypeError, Payload: EncodeError(WireError{Code: CodeOverloaded, Message: "tenant queue full"})}),
		"frame_schema":   AppendFrame(nil, Frame{Type: TypeSchema, Payload: EncodeSchema(Schema{Cols: []string{"v1", "v2"}})}),
		"frame_rows":     AppendFrame(nil, Frame{Type: TypeRows, Payload: EncodeRows(Rows{NCols: 2, Tags: []byte{0, 1, 0, 0}, Vals: []int64{3, 0, -9, 1}})}),
		"frame_stats":    AppendFrame(nil, Frame{Type: TypeStats}),
		"frame_stats_reply": AppendFrame(nil, Frame{
			Type: TypeStatsReply, Payload: []byte(`{"draining":false}`),
		}),
		"frame_pair": AppendFrame(
			AppendFrame(nil, Frame{Type: TypeExec, Payload: []byte("DROP TABLE edges")}),
			Frame{Type: TypeDone, Payload: EncodeDone(Done{Rows: 7, QueueNanos: 125000})}),
		"frame_prepare":    AppendFrame(nil, Frame{Type: TypePrepare, Payload: []byte("INSERT INTO $1 VALUES ($2,$3)")}),
		"frame_prepare_ok": AppendFrame(nil, Frame{Type: TypePrepareOK, Payload: EncodePrepareOK(PrepareOK{ID: 3, NumParams: 3, IsQuery: false})}),
		"frame_exec_prepared": AppendFrame(nil, Frame{
			Type: TypeExecPrepared, Payload: EncodeExecPrepared(ExecPrepared{ID: 3, Args: []Arg{TableArg("edges"), IntArg(-7), NullArg()}}),
		}),
		"frame_close_prepared": AppendFrame(nil, Frame{Type: TypeClosePrepared, Payload: EncodeClosePrepared(ClosePrepared{ID: 3})}),
		"frame_subscribe":      AppendFrame(nil, Frame{Type: TypeSubscribe, Payload: EncodeSubscribe(Subscribe{Table: "edges"})}),
		"frame_subscribe_ok":   AppendFrame(nil, Frame{Type: TypeSubscribeOK, Payload: EncodeSubscribeOK(SubscribeOK{Seq: 42})}),
		"frame_notify_merge":   AppendFrame(nil, Frame{Type: TypeNotify, Payload: EncodeNotify(Notify{Seq: 43, Kind: NotifyMerge, From: 9, To: 1})}),
		"frame_notify_rebuild": AppendFrame(nil, Frame{Type: TypeNotify, Payload: EncodeNotify(Notify{Seq: 44, Kind: NotifyRebuild})}),
		"frame_empty":          {},
		"frame_lying_hdr":      {0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"frame_truncated":      AppendFrame(nil, Frame{Type: TypeCC, Payload: EncodeCC(CC{Table: "edges"})})[:9],
		"frame_rows_nulls":     AppendFrame(nil, Frame{Type: TypeRows, Payload: EncodeRows(Rows{NCols: 1, Tags: []byte{1, 1}, Vals: []int64{0, 0}})}),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
