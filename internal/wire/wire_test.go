package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Payload: EncodeHello(Hello{Version: 1, Tenant: "acme", Token: "s3cret"})},
		{Type: TypeExec, Payload: []byte("CREATE TABLE t (v1, v2)")},
		{Type: TypeQuery, Payload: []byte("SELECT v1, v2 FROM t")},
		{Type: TypeDone, Payload: EncodeDone(Done{Rows: 42, QueueNanos: 1234})},
		{Type: TypeError, Payload: EncodeError(WireError{Code: CodeOverloaded, Message: "q full"})},
		{Type: TypeRows, Payload: EncodeRows(Rows{NCols: 2, Tags: []byte{0, 1, 0, 0}, Vals: []int64{7, 0, -1, 9}})},
		{Type: TypeStats, Payload: nil},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame round-trip: got %v want %v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read: %v, want EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	raw := []byte{TypeExec, 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := DecodeFrame(raw); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized decode: %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, Frame{Type: TypeRows, Payload: make([]byte, MaxFrameLen+1)}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: %v, want ErrFrameTooLarge", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hello := Hello{Version: ProtocolVersion, Tenant: "tenant_a", Token: "tok"}
	if got, err := DecodeHello(EncodeHello(hello)); err != nil || got != hello {
		t.Fatalf("hello: %+v %v", got, err)
	}
	ok := HelloOK{Version: ProtocolVersion, Namespace: "tenant_a_"}
	if got, err := DecodeHelloOK(EncodeHelloOK(ok)); err != nil || got != ok {
		t.Fatalf("hello-ok: %+v %v", got, err)
	}
	cc := CC{Table: "edges", Algorithm: "rc", Seed: 2019}
	if got, err := DecodeCC(EncodeCC(cc)); err != nil || got != cc {
		t.Fatalf("cc: %+v %v", got, err)
	}
	done := Done{Rows: -1, QueueNanos: 7}
	if got, err := DecodeDone(EncodeDone(done)); err != nil || got != done {
		t.Fatalf("done: %+v %v", got, err)
	}
	ccd := CCDone{Components: 3, Rounds: 5, Vertices: 100, QueueNanos: 9}
	if got, err := DecodeCCDone(EncodeCCDone(ccd)); err != nil || got != ccd {
		t.Fatalf("ccdone: %+v %v", got, err)
	}
	we := WireError{Code: CodeUnavailable, Message: "draining"}
	if got, err := DecodeError(EncodeError(we)); err != nil || got != we {
		t.Fatalf("error: %+v %v", got, err)
	}
	if !(&WireError{Code: CodeOverloaded}).Overloaded() || (&WireError{Code: CodeInternal}).Overloaded() {
		t.Fatal("Overloaded misclassifies codes")
	}
	sch := Schema{Cols: []string{"v1", "v2", "n"}}
	got, err := DecodeSchema(EncodeSchema(sch))
	if err != nil || strings.Join(got.Cols, ",") != "v1,v2,n" {
		t.Fatalf("schema: %+v %v", got, err)
	}
	pok := PrepareOK{ID: 9, NumParams: 4, IsQuery: true}
	if got, err := DecodePrepareOK(EncodePrepareOK(pok)); err != nil || got != pok {
		t.Fatalf("prepare-ok: %+v %v", got, err)
	}
	ep := ExecPrepared{ID: 9, Args: []Arg{IntArg(-3), NullArg(), TableArg("rc_graph")}}
	gotEP, err := DecodeExecPrepared(EncodeExecPrepared(ep))
	if err != nil || gotEP.ID != ep.ID || len(gotEP.Args) != 3 ||
		gotEP.Args[0] != ep.Args[0] || gotEP.Args[1] != ep.Args[1] || gotEP.Args[2] != ep.Args[2] {
		t.Fatalf("exec-prepared: %+v %v", gotEP, err)
	}
	// Argument-free execution round-trips too.
	if got, err := DecodeExecPrepared(EncodeExecPrepared(ExecPrepared{ID: 1})); err != nil || got.ID != 1 || len(got.Args) != 0 {
		t.Fatalf("exec-prepared empty: %+v %v", got, err)
	}
	cp := ClosePrepared{ID: 9}
	if got, err := DecodeClosePrepared(EncodeClosePrepared(cp)); err != nil || got != cp {
		t.Fatalf("close-prepared: %+v %v", got, err)
	}
}

func TestExecPreparedDecodeRejectsBadTags(t *testing.T) {
	// A frame carrying an unknown argument tag must be rejected, not
	// skipped: silently dropping an argument would shift every later
	// binding.
	raw := EncodeExecPrepared(ExecPrepared{ID: 1, Args: []Arg{IntArg(5)}})
	raw[6] = 9 // the first arg's tag byte (4B id + 2B count)
	if _, err := DecodeExecPrepared(raw); err == nil {
		t.Fatal("invalid arg tag accepted")
	}
	// An is-query flag outside {0,1} is equally meaningless.
	pok := EncodePrepareOK(PrepareOK{ID: 1})
	pok[len(pok)-1] = 2
	if _, err := DecodePrepareOK(pok); err == nil {
		t.Fatal("invalid is-query flag accepted")
	}
}

func TestRowsCodec(t *testing.T) {
	rs := Rows{NCols: 3, Tags: []byte{0, 0, 1, 0, 1, 0}, Vals: []int64{1, -2, 0, 4, 0, 6}}
	got, err := DecodeRows(EncodeRows(rs))
	if err != nil {
		t.Fatal(err)
	}
	if got.NRows() != 2 || got.NCols != 3 {
		t.Fatalf("shape: %d rows x %d cols", got.NRows(), got.NCols)
	}
	for i := range rs.Vals {
		if got.Tags[i] != rs.Tags[i] || got.Vals[i] != rs.Vals[i] {
			t.Fatalf("value %d: tag=%d val=%d", i, got.Tags[i], got.Vals[i])
		}
	}
	// Empty chunk round-trips too.
	if got, err := DecodeRows(EncodeRows(Rows{NCols: 2})); err != nil || got.NRows() != 0 {
		t.Fatalf("empty chunk: %+v %v", got, err)
	}
}

func TestEncodersRefuseUnrepresentableCounts(t *testing.T) {
	// A count that overflows its wire width must panic, not truncate
	// into a frame that decodes to the wrong shape.
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: wide encode did not panic", name)
			}
		}()
		f()
	}
	mustPanic("EncodeSchema", func() { EncodeSchema(Schema{Cols: make([]string, MaxCols+1)}) })
	mustPanic("EncodeRows", func() { EncodeRows(Rows{NCols: MaxCols + 1}) })
	mustPanic("EncodeExecPrepared", func() { EncodeExecPrepared(ExecPrepared{Args: make([]Arg, MaxArgs+1)}) })
	mustPanic("EncodeExecPreparedTag", func() { EncodeExecPrepared(ExecPrepared{Args: []Arg{{Tag: 7}}}) })
}

func TestDecodersRejectGarbage(t *testing.T) {
	// Truncations and trailing bytes must be rejected, never panic.
	cases := [][]byte{
		nil,
		{1},
		{1, 2, 3},
		append(EncodeHello(Hello{Tenant: "x"}), 0xee),
		append(EncodeDone(Done{}), 0x00),
		{0xff, 0xff, 0xff, 0xff, 0xff},
	}
	for i, p := range cases {
		if _, err := DecodeHello(p); err == nil && i != 0 {
			t.Errorf("case %d: DecodeHello accepted garbage", i)
		}
		if _, err := DecodeDone(p); err == nil {
			t.Errorf("case %d: DecodeDone accepted garbage", i)
		}
		if _, err := DecodeRows(p); err == nil {
			t.Errorf("case %d: DecodeRows accepted garbage", i)
		}
	}
	// A rows chunk whose value count disagrees with its byte length.
	bad := EncodeRows(Rows{NCols: 1, Tags: []byte{0}, Vals: []int64{5}})
	bad[2]++ // bump the declared value count
	if _, err := DecodeRows(bad); err == nil {
		t.Fatal("DecodeRows accepted an inconsistent value count")
	}
	// A NULL with a non-zero payload has no canonical encoding.
	nz := EncodeRows(Rows{NCols: 1, Tags: []byte{0}, Vals: []int64{5}})
	nz[6] = 1 // flip the tag to NULL, keep the payload
	if _, err := DecodeRows(nz); err == nil {
		t.Fatal("DecodeRows accepted a non-canonical NULL")
	}
}
