// Package wire defines the length-prefixed protocol ccserverd speaks on
// the network and the message payload codecs shared by the server
// (internal/server) and the Go client (internal/client).
//
// # Frame grammar
//
// Every message travels in one frame:
//
//	frame   := type:byte length:uint32be payload:length*byte
//
// The type byte selects a message; the big-endian uint32 is the payload
// length in bytes. Frames larger than MaxFrameLen are rejected before any
// allocation, so a corrupt or hostile peer cannot make the server reserve
// gigabytes from four bytes of header. The frame layer carries no
// checksums or compression — the protocol is designed for trusted
// datacenter links, like the segment interconnect it sits on top of.
//
// Payload encodings are fixed-width little-endian integers and uint32
// length-prefixed strings. Every message has exactly one encoding: the
// decoder consumes the whole payload and rejects trailing garbage, so
// decode∘encode is the identity and FuzzFrameCodec can assert exact
// round-trips on anything the decoder accepts.
//
// # Message flow
//
// Clients speak first: a Hello carrying the protocol version, the tenant
// name and an optional auth token. The server answers HelloOK (or Error
// with CodeAuth) and the connection becomes a statement loop — each
// Exec/Query/CC/Stats request is answered by exactly one terminal frame
// (Done, CCDone, StatsReply or Error), with Schema and Rows frames
// streamed before Done for Query. A connection carries one statement at a
// time; concurrency comes from opening more connections.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ProtocolVersion is negotiated in Hello; the server rejects clients
// whose major version differs.
const ProtocolVersion = 1

// MaxFrameLen bounds a frame payload (16 MiB). Result sets larger than
// this stream as multiple Rows frames, so the cap is never a limit on
// query size — only on single-frame allocation.
const MaxFrameLen = 16 << 20

// Frame types. Requests (client→server) sit below 0x80, responses above.
const (
	TypeHello         byte = 0x01 // auth + tenant select
	TypeExec          byte = 0x02 // statement script; reply: Done | Error
	TypeQuery         byte = 0x03 // SELECT; reply: Schema, Rows*, Done | Error
	TypeCC            byte = 0x04 // connected-components run; reply: CCDone | Error
	TypeStats         byte = 0x05 // server stats probe; reply: StatsReply
	TypePrepare       byte = 0x06 // $N statement text; reply: PrepareOK | Error
	TypeExecPrepared  byte = 0x07 // bound execution; reply: Done | (Schema, Rows*, Done) | Error
	TypeClosePrepared byte = 0x08 // release a prepared statement; reply: Done | Error
	TypeSubscribe     byte = 0x09 // watch a table's component index; reply: SubscribeOK, Notify* | Error
	TypeHelloOK       byte = 0x81
	TypeSchema        byte = 0x82
	TypeRows          byte = 0x83
	TypeDone          byte = 0x84
	TypeError         byte = 0x85
	TypeCCDone        byte = 0x86
	TypeStatsReply    byte = 0x87 // payload: JSON-encoded ServerStats
	TypePrepareOK     byte = 0x88
	TypeSubscribeOK   byte = 0x89
	TypeNotify        byte = 0x8a
)

// Error codes carried by Error frames, HTTP-flavoured so overload reads
// as the 429 it is.
const (
	CodeParse       uint16 = 400 // statement failed to parse or plan
	CodeAuth        uint16 = 401 // bad token or malformed tenant name
	CodeNotFound    uint16 = 404 // unknown table / algorithm
	CodeOverloaded  uint16 = 429 // admission queue full or queue wait timed out
	CodeInternal    uint16 = 500 // execution error
	CodeUnavailable uint16 = 503 // server draining; retry elsewhere/later
)

// frameHeaderLen is the type byte plus the uint32 payload length.
const frameHeaderLen = 5

// Frame is one wire frame.
type Frame struct {
	Type    byte
	Payload []byte
}

// ErrFrameTooLarge rejects frames whose header announces more than
// MaxFrameLen payload bytes.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameLen")

// AppendFrame appends f's encoding to dst and returns the result.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, f.Type)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// DecodeFrame decodes one frame from the head of data, returning the
// frame and the number of bytes consumed. An incomplete header or payload
// is an error (the stream reader never presents partial buffers; the
// fuzzer does).
func DecodeFrame(data []byte) (Frame, int, error) {
	if len(data) < frameHeaderLen {
		return Frame{}, 0, fmt.Errorf("wire: short frame header: %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data[1:frameHeaderLen])
	if n > MaxFrameLen {
		return Frame{}, 0, ErrFrameTooLarge
	}
	end := frameHeaderLen + int(n)
	if len(data) < end {
		return Frame{}, 0, fmt.Errorf("wire: frame payload truncated: have %d of %d bytes", len(data)-frameHeaderLen, n)
	}
	return Frame{Type: data[0], Payload: data[frameHeaderLen:end]}, end, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameLen {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = f.Type
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads one frame from r, rejecting oversized payloads before
// allocating them.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrameLen {
		return Frame{}, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: reading %d-byte payload: %w", n, err)
	}
	return Frame{Type: hdr[0], Payload: payload}, nil
}

// payload cursor helpers ----------------------------------------------------

// errTruncated is the shared "payload ended early" decode error.
var errTruncated = errors.New("wire: truncated payload")

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil || r.off+int(n) > len(r.data) || int(n) < 0 {
		r.fail()
		return ""
	}
	v := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return v
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTruncated
	}
}

// done requires the cursor to have consumed the payload exactly: trailing
// bytes would give one message two encodings and break round-tripping.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("wire: %d trailing payload bytes", len(r.data)-r.off)
	}
	return nil
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// messages ------------------------------------------------------------------

// Hello opens a connection: protocol version, tenant selection and an
// optional shared-secret token.
type Hello struct {
	Version byte
	Tenant  string
	Token   string
}

// EncodeHello encodes h as a TypeHello frame payload.
func EncodeHello(h Hello) []byte {
	out := []byte{h.Version}
	out = appendStr(out, h.Tenant)
	out = appendStr(out, h.Token)
	return out
}

// DecodeHello decodes a TypeHello payload.
func DecodeHello(p []byte) (Hello, error) {
	r := &reader{data: p}
	h := Hello{Version: r.u8(), Tenant: r.str(), Token: r.str()}
	return h, r.done()
}

// HelloOK acknowledges a handshake.
type HelloOK struct {
	Version byte
	// Namespace is the tenant's physical catalog prefix, surfaced so
	// clients can log which catalog they landed in.
	Namespace string
}

// EncodeHelloOK encodes h as a TypeHelloOK frame payload.
func EncodeHelloOK(h HelloOK) []byte {
	out := []byte{h.Version}
	return appendStr(out, h.Namespace)
}

// DecodeHelloOK decodes a TypeHelloOK payload.
func DecodeHelloOK(p []byte) (HelloOK, error) {
	r := &reader{data: p}
	h := HelloOK{Version: r.u8(), Namespace: r.str()}
	return h, r.done()
}

// Exec and Query payloads are the raw statement text; no further framing.

// CC requests a connected-components run over a tenant table.
type CC struct {
	Table     string
	Algorithm string // "", "rc", "hm", "tp", "cr", "bfs"
	Seed      uint64
}

// EncodeCC encodes c as a TypeCC frame payload.
func EncodeCC(c CC) []byte {
	out := appendStr(nil, c.Table)
	out = appendStr(out, c.Algorithm)
	return binary.LittleEndian.AppendUint64(out, c.Seed)
}

// DecodeCC decodes a TypeCC payload.
func DecodeCC(p []byte) (CC, error) {
	r := &reader{data: p}
	c := CC{Table: r.str(), Algorithm: r.str(), Seed: uint64(r.i64())}
	return c, r.done()
}

// Done terminates a successful Exec or Query: the row count the statement
// produced and the time the statement waited in the admission queue.
type Done struct {
	Rows       int64
	QueueNanos int64
}

// EncodeDone encodes d as a TypeDone frame payload.
func EncodeDone(d Done) []byte {
	out := binary.LittleEndian.AppendUint64(nil, uint64(d.Rows))
	return binary.LittleEndian.AppendUint64(out, uint64(d.QueueNanos))
}

// DecodeDone decodes a TypeDone payload.
func DecodeDone(p []byte) (Done, error) {
	r := &reader{data: p}
	d := Done{Rows: r.i64(), QueueNanos: r.i64()}
	return d, r.done()
}

// CCDone terminates a successful connected-components run.
type CCDone struct {
	Components int64
	Rounds     int64
	Vertices   int64
	QueueNanos int64
}

// EncodeCCDone encodes d as a TypeCCDone frame payload.
func EncodeCCDone(d CCDone) []byte {
	out := binary.LittleEndian.AppendUint64(nil, uint64(d.Components))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.Rounds))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.Vertices))
	return binary.LittleEndian.AppendUint64(out, uint64(d.QueueNanos))
}

// DecodeCCDone decodes a TypeCCDone payload.
func DecodeCCDone(p []byte) (CCDone, error) {
	r := &reader{data: p}
	d := CCDone{Components: r.i64(), Rounds: r.i64(), Vertices: r.i64(), QueueNanos: r.i64()}
	return d, r.done()
}

// WireError is the typed failure a server sends instead of a result.
type WireError struct {
	Code    uint16
	Message string
}

// Error implements the error interface.
func (e *WireError) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Message)
}

// Overloaded reports whether the error is the 429-style admission
// rejection (queue full or queue-wait timeout).
func (e *WireError) Overloaded() bool { return e.Code == CodeOverloaded }

// EncodeError encodes e as a TypeError frame payload.
func EncodeError(e WireError) []byte {
	out := binary.LittleEndian.AppendUint16(nil, e.Code)
	return appendStr(out, e.Message)
}

// DecodeError decodes a TypeError payload.
func DecodeError(p []byte) (WireError, error) {
	r := &reader{data: p}
	e := WireError{Code: r.u16(), Message: r.str()}
	return e, r.done()
}

// Schema carries a result set's column names.
type Schema struct {
	Cols []string
}

// MaxCols bounds the column count of one Schema or Rows frame: the wire
// carries it as a uint16, so wider shapes are unrepresentable. Encoders
// panic rather than silently truncate; servers should reject wider
// results before encoding.
const MaxCols = 1<<16 - 1

// EncodeSchema encodes s as a TypeSchema frame payload. It panics when
// the schema is wider than MaxCols — truncating the count would encode
// a frame that decodes to the wrong shape.
func EncodeSchema(s Schema) []byte {
	if len(s.Cols) > MaxCols {
		panic(fmt.Sprintf("wire: schema has %d columns, max %d", len(s.Cols), MaxCols))
	}
	out := binary.LittleEndian.AppendUint16(nil, uint16(len(s.Cols)))
	for _, c := range s.Cols {
		out = appendStr(out, c)
	}
	return out
}

// DecodeSchema decodes a TypeSchema payload.
func DecodeSchema(p []byte) (Schema, error) {
	r := &reader{data: p}
	n := int(r.u16())
	s := Schema{}
	for i := 0; i < n && r.err == nil; i++ {
		s.Cols = append(s.Cols, r.str())
	}
	return s, r.done()
}

// Rows is one chunk of a streamed result set: row-major values, each a
// null-tag byte plus a little-endian int64 payload — the same 9-byte
// value width the engine charges on its segment interconnect
// (engine.DatumWireSize).
type Rows struct {
	NCols int
	// Tags[i] is 1 when value i is SQL NULL, 0 otherwise; Vals[i] is the
	// integer payload (0 for NULL).
	Tags []byte
	Vals []int64
}

// NRows returns the number of rows in the chunk.
func (r Rows) NRows() int {
	if r.NCols == 0 {
		return 0
	}
	return len(r.Vals) / r.NCols
}

// EncodeRows encodes r as a TypeRows frame payload. It panics when
// NCols exceeds MaxCols or the value count overflows the wire's uint32
// — truncating either count would encode a corrupt frame.
func EncodeRows(rs Rows) []byte {
	if rs.NCols > MaxCols {
		panic(fmt.Sprintf("wire: rows chunk has %d columns, max %d", rs.NCols, MaxCols))
	}
	if uint64(len(rs.Vals)) > 1<<32-1 {
		panic(fmt.Sprintf("wire: rows chunk has %d values, max %d", len(rs.Vals), uint32(1<<32-1)))
	}
	out := binary.LittleEndian.AppendUint16(nil, uint16(rs.NCols))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(rs.Vals)))
	for i, v := range rs.Vals {
		out = append(out, rs.Tags[i])
		out = binary.LittleEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// DecodeRows decodes a TypeRows payload.
func DecodeRows(p []byte) (Rows, error) {
	r := &reader{data: p}
	rs := Rows{NCols: int(r.u16())}
	n := r.u32()
	if r.err == nil {
		// Each value is 9 bytes; reject impossible counts before allocating.
		if rem := len(p) - r.off; int(n) < 0 || int(n)*9 != rem {
			return Rows{}, fmt.Errorf("wire: rows chunk declares %d values with %d payload bytes", n, rem)
		}
		// A chunk's values must tile into whole rows.
		if rs.NCols == 0 && n > 0 {
			return Rows{}, errors.New("wire: rows chunk has values but zero columns")
		}
		if rs.NCols > 0 && int(n)%rs.NCols != 0 {
			return Rows{}, fmt.Errorf("wire: %d values do not tile into %d columns", n, rs.NCols)
		}
		rs.Tags = make([]byte, n)
		rs.Vals = make([]int64, n)
		for i := 0; i < int(n); i++ {
			tag := r.u8()
			if tag > 1 {
				return Rows{}, fmt.Errorf("wire: invalid null tag %d", tag)
			}
			rs.Tags[i] = tag
			rs.Vals[i] = r.i64()
			if rs.Tags[i] == 1 && rs.Vals[i] != 0 {
				return Rows{}, errors.New("wire: NULL value carries a non-zero payload")
			}
		}
	}
	if err := r.done(); err != nil {
		return Rows{}, err
	}
	return rs, nil
}

// prepared statements -------------------------------------------------------

// A TypePrepare payload is the raw $N statement text, like Exec; the reply
// is a PrepareOK carrying the server-assigned statement ID.

// PrepareOK acknowledges a Prepare: the per-connection statement ID, the
// parameter count, and whether execution streams rows (a single SELECT).
type PrepareOK struct {
	ID        uint32
	NumParams uint16
	IsQuery   bool
}

// EncodePrepareOK encodes p as a TypePrepareOK frame payload.
func EncodePrepareOK(p PrepareOK) []byte {
	out := binary.LittleEndian.AppendUint32(nil, p.ID)
	out = binary.LittleEndian.AppendUint16(out, p.NumParams)
	q := byte(0)
	if p.IsQuery {
		q = 1
	}
	return append(out, q)
}

// DecodePrepareOK decodes a TypePrepareOK payload.
func DecodePrepareOK(p []byte) (PrepareOK, error) {
	r := &reader{data: p}
	ok := PrepareOK{ID: r.u32(), NumParams: r.u16()}
	q := r.u8()
	if r.err == nil && q > 1 {
		return PrepareOK{}, fmt.Errorf("wire: invalid is-query flag %d", q)
	}
	ok.IsQuery = q == 1
	return ok, r.done()
}

// Argument kind tags of an ExecPrepared payload.
const (
	ArgTagInt   byte = 0 // little-endian int64 value
	ArgTagNull  byte = 1 // SQL NULL, no payload
	ArgTagTable byte = 2 // length-prefixed table name
)

// Arg is one bound parameter of an ExecPrepared: an integer, NULL, or a
// table name.
type Arg struct {
	Tag   byte
	Int   int64  // ArgTagInt payload
	Table string // ArgTagTable payload
}

// IntArg, NullArg and TableArg build the three argument kinds.
func IntArg(v int64) Arg       { return Arg{Tag: ArgTagInt, Int: v} }
func NullArg() Arg             { return Arg{Tag: ArgTagNull} }
func TableArg(name string) Arg { return Arg{Tag: ArgTagTable, Table: name} }

// ExecPrepared executes a prepared statement with bound arguments. The
// reply mirrors Exec or Query depending on the statement kind.
type ExecPrepared struct {
	ID   uint32
	Args []Arg
}

// MaxArgs bounds the argument count of one ExecPrepared frame — far above
// the SQL layer's own parameter cap, so the wire is never the limit.
const MaxArgs = 1<<16 - 1

// EncodeExecPrepared encodes e as a TypeExecPrepared frame payload. It
// panics when the argument count exceeds MaxArgs — truncating it would
// encode a frame that decodes to the wrong binding.
func EncodeExecPrepared(e ExecPrepared) []byte {
	if len(e.Args) > MaxArgs {
		panic(fmt.Sprintf("wire: exec-prepared has %d args, max %d", len(e.Args), MaxArgs))
	}
	out := binary.LittleEndian.AppendUint32(nil, e.ID)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(e.Args)))
	for _, a := range e.Args {
		out = append(out, a.Tag)
		switch a.Tag {
		case ArgTagInt:
			out = binary.LittleEndian.AppendUint64(out, uint64(a.Int))
		case ArgTagNull:
		case ArgTagTable:
			out = appendStr(out, a.Table)
		default:
			panic(fmt.Sprintf("wire: invalid arg tag %d", a.Tag))
		}
	}
	return out
}

// DecodeExecPrepared decodes a TypeExecPrepared payload.
func DecodeExecPrepared(p []byte) (ExecPrepared, error) {
	r := &reader{data: p}
	e := ExecPrepared{ID: r.u32()}
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		a := Arg{Tag: r.u8()}
		switch a.Tag {
		case ArgTagInt:
			a.Int = r.i64()
		case ArgTagNull:
		case ArgTagTable:
			a.Table = r.str()
		default:
			return ExecPrepared{}, fmt.Errorf("wire: invalid arg tag %d", a.Tag)
		}
		e.Args = append(e.Args, a)
	}
	return e, r.done()
}

// ClosePrepared releases a prepared statement's server-side resources.
type ClosePrepared struct {
	ID uint32
}

// EncodeClosePrepared encodes c as a TypeClosePrepared frame payload.
func EncodeClosePrepared(c ClosePrepared) []byte {
	return binary.LittleEndian.AppendUint32(nil, c.ID)
}

// DecodeClosePrepared decodes a TypeClosePrepared payload.
func DecodeClosePrepared(p []byte) (ClosePrepared, error) {
	r := &reader{data: p}
	c := ClosePrepared{ID: r.u32()}
	return c, r.done()
}

// Subscribe asks the server to stream component-index events for a table.
// The server answers SubscribeOK (carrying the index sequence number as of
// registration) and then a Notify frame per event until the connection
// closes or the server drains, which it signals with a terminal Error frame
// (CodeUnavailable). A subscription is terminal for the connection: no
// further requests are read after it.
type Subscribe struct {
	Table string
}

// EncodeSubscribe encodes s as a TypeSubscribe frame payload.
func EncodeSubscribe(s Subscribe) []byte {
	return appendStr(nil, s.Table)
}

// DecodeSubscribe decodes a TypeSubscribe payload.
func DecodeSubscribe(p []byte) (Subscribe, error) {
	r := &reader{data: p}
	s := Subscribe{Table: r.str()}
	return s, r.done()
}

// SubscribeOK acknowledges a Subscribe: Seq is the component index's
// sequence number at registration time, so the client can anchor the
// gap-free Notify sequence that follows.
type SubscribeOK struct {
	Seq uint64
}

// EncodeSubscribeOK encodes s as a TypeSubscribeOK frame payload.
func EncodeSubscribeOK(s SubscribeOK) []byte {
	return binary.LittleEndian.AppendUint64(nil, s.Seq)
}

// DecodeSubscribeOK decodes a TypeSubscribeOK payload.
func DecodeSubscribeOK(p []byte) (SubscribeOK, error) {
	r := &reader{data: p}
	s := SubscribeOK{Seq: r.u64()}
	return s, r.done()
}

// Notify event kinds. These are wire-protocol values (they mirror the
// engine's IndexEventMerge/IndexEventRebuild) and must not be renumbered.
const (
	NotifyMerge   byte = 0 // From's component was merged into To's
	NotifyRebuild byte = 1 // labelling rebuilt; From/To are zero
)

// Notify is one component-index event. Seq increases by exactly one per
// event on a subscription; a gap means frames were lost and the client
// should treat the subscription as broken.
type Notify struct {
	Seq  uint64
	Kind byte // NotifyMerge or NotifyRebuild
	From int64
	To   int64
}

// EncodeNotify encodes n as a TypeNotify frame payload.
func EncodeNotify(n Notify) []byte {
	out := binary.LittleEndian.AppendUint64(nil, n.Seq)
	out = append(out, n.Kind)
	out = binary.LittleEndian.AppendUint64(out, uint64(n.From))
	return binary.LittleEndian.AppendUint64(out, uint64(n.To))
}

// DecodeNotify decodes a TypeNotify payload.
func DecodeNotify(p []byte) (Notify, error) {
	r := &reader{data: p}
	n := Notify{Seq: r.u64(), Kind: r.u8(), From: r.i64(), To: r.i64()}
	if r.err == nil && n.Kind > NotifyRebuild {
		return Notify{}, fmt.Errorf("wire: invalid notify kind %d", n.Kind)
	}
	return n, r.done()
}

// TenantStats is the admission accounting of one tenant, part of
// ServerStats.
type TenantStats struct {
	Admitted      int64 `json:"admitted"`        // statements that acquired a slot
	Active        int64 `json:"active"`          // statements executing now
	Queued        int64 `json:"queued"`          // statements waiting now
	QueuedTotal   int64 `json:"queued_total"`    // statements that ever waited
	PeakQueued    int64 `json:"peak_queued"`     // highest simultaneous queue depth
	QueueNanos    int64 `json:"queue_nanos"`     // total time spent waiting
	ShedQueueFull int64 `json:"shed_queue_full"` // rejected: queue at capacity
	ShedTimeout   int64 `json:"shed_timeout"`    // rejected: queue wait exceeded the timeout
}

// ServerStats is the payload of a StatsReply, JSON-encoded for
// extensibility (it is an observability surface, not a hot path).
type ServerStats struct {
	Draining       bool  `json:"draining"`
	Conns          int64 `json:"conns"`
	ConnsTotal     int64 `json:"conns_total"`
	Statements     int64 `json:"statements"`
	Failed         int64 `json:"failed"`      // statements that returned Error (overload included)
	Shed           int64 `json:"shed"`        // admission rejections across tenants
	QueueDepth     int64 `json:"queue_depth"` // statements waiting right now, all tenants
	PeakQueueDepth int64 `json:"peak_queue_depth"`
	// Prepared-statement and plan-cache accounting of the shared engine.
	Prepared               int64                  `json:"prepared"` // prepared statements currently held, all connections
	Parses                 int64                  `json:"parses"`   // SQL texts parsed by the engine
	PlanCacheHits          int64                  `json:"plan_cache_hits"`
	PlanCacheMisses        int64                  `json:"plan_cache_misses"`
	PlanCacheInvalidations int64                  `json:"plan_cache_invalidations"`
	PlanCacheEntries       int64                  `json:"plan_cache_entries"`
	// Component-index maintenance and subscription fan-out accounting.
	Watchers           int64                  `json:"watchers"` // live subscriptions right now
	WatchersTotal      int64                  `json:"watchers_total"`
	Notifies           int64                  `json:"notifies"` // Notify frames written, all subscriptions
	IndexLabelsTouched int64                  `json:"index_labels_touched"`
	IndexMerges        int64                  `json:"index_merges"`
	IndexRebuilds      int64                  `json:"index_rebuilds"`
	Tenants            map[string]TenantStats `json:"tenants"`
}
