package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameCodec fuzzes the wire-frame decoder with untrusted bytes — the
// exact stream a hostile client could write at ccserverd's socket. It
// must never panic or over-read, and anything it accepts must re-encode
// to exactly the bytes it consumed (frames and message payloads each have
// one canonical encoding). The seed corpus lives in
// testdata/fuzz/FuzzFrameCodec plus the generated frames below; use
// `go test -fuzz=FuzzFrameCodec ./internal/wire` to explore. This mirrors
// FuzzChunkCodec, the equivalent contract on the spill codec.
func FuzzFrameCodec(f *testing.F) {
	// Seed with one well-formed frame of every message shape.
	seeds := []Frame{
		{Type: TypeHello, Payload: EncodeHello(Hello{Version: ProtocolVersion, Tenant: "acme", Token: "tok"})},
		{Type: TypeHelloOK, Payload: EncodeHelloOK(HelloOK{Version: ProtocolVersion, Namespace: "t1_acme_"})},
		{Type: TypeExec, Payload: []byte("DROP TABLE edges")},
		{Type: TypeQuery, Payload: []byte("SELECT count(*) AS n FROM edges")},
		{Type: TypeCC, Payload: EncodeCC(CC{Table: "edges", Algorithm: "rc", Seed: 2019})},
		{Type: TypeDone, Payload: EncodeDone(Done{Rows: 7, QueueNanos: 125000})},
		{Type: TypeCCDone, Payload: EncodeCCDone(CCDone{Components: 2, Rounds: 4, Vertices: 64})},
		{Type: TypeError, Payload: EncodeError(WireError{Code: CodeOverloaded, Message: "tenant queue full"})},
		{Type: TypeSchema, Payload: EncodeSchema(Schema{Cols: []string{"v1", "v2"}})},
		{Type: TypeRows, Payload: EncodeRows(Rows{NCols: 2, Tags: []byte{0, 1, 0, 0}, Vals: []int64{3, 0, -9, 1}})},
		{Type: TypeStats},
		{Type: TypeStatsReply, Payload: []byte(`{"draining":false}`)},
		{Type: TypePrepare, Payload: []byte("INSERT INTO $1 VALUES ($2,$3)")},
		{Type: TypePrepareOK, Payload: EncodePrepareOK(PrepareOK{ID: 3, NumParams: 3, IsQuery: false})},
		{Type: TypeExecPrepared, Payload: EncodeExecPrepared(ExecPrepared{ID: 3, Args: []Arg{TableArg("edges"), IntArg(-7), NullArg()}})},
		{Type: TypeClosePrepared, Payload: EncodeClosePrepared(ClosePrepared{ID: 3})},
		{Type: TypeSubscribe, Payload: EncodeSubscribe(Subscribe{Table: "edges"})},
		{Type: TypeSubscribeOK, Payload: EncodeSubscribeOK(SubscribeOK{Seq: 42})},
		{Type: TypeNotify, Payload: EncodeNotify(Notify{Seq: 43, Kind: NotifyMerge, From: 9, To: 1})},
		{Type: TypeNotify, Payload: EncodeNotify(Notify{Seq: 44, Kind: NotifyRebuild})},
	}
	for _, fr := range seeds {
		f.Add(AppendFrame(nil, fr))
	}
	// Two frames back to back, an empty input, and a lying header.
	f.Add(AppendFrame(AppendFrame(nil, seeds[2]), seeds[5]))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return // rejection is fine; panics and over-reads are not
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		// Accepted frames round-trip byte-identically.
		if re := AppendFrame(nil, fr); !bytes.Equal(re, data[:n]) {
			t.Fatalf("frame round-trip mismatch: consumed %d bytes, re-encoded %d", n, len(re))
		}
		// Message payload decoders must also be total and canonical: never
		// panic, and re-encode whatever they accept to the same bytes.
		switch fr.Type {
		case TypeHello:
			if h, err := DecodeHello(fr.Payload); err == nil {
				if re := EncodeHello(h); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("hello round-trip mismatch")
				}
			}
		case TypeHelloOK:
			if h, err := DecodeHelloOK(fr.Payload); err == nil {
				if re := EncodeHelloOK(h); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("hello-ok round-trip mismatch")
				}
			}
		case TypeCC:
			if c, err := DecodeCC(fr.Payload); err == nil {
				if re := EncodeCC(c); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("cc round-trip mismatch")
				}
			}
		case TypeDone:
			if d, err := DecodeDone(fr.Payload); err == nil {
				if re := EncodeDone(d); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("done round-trip mismatch")
				}
			}
		case TypeCCDone:
			if d, err := DecodeCCDone(fr.Payload); err == nil {
				if re := EncodeCCDone(d); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("ccdone round-trip mismatch")
				}
			}
		case TypeError:
			if e, err := DecodeError(fr.Payload); err == nil {
				if re := EncodeError(e); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("error round-trip mismatch")
				}
			}
		case TypeSchema:
			if s, err := DecodeSchema(fr.Payload); err == nil {
				if re := EncodeSchema(s); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("schema round-trip mismatch")
				}
			}
		case TypeRows:
			if rs, err := DecodeRows(fr.Payload); err == nil {
				if re := EncodeRows(rs); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("rows round-trip mismatch")
				}
			}
		case TypePrepareOK:
			if p, err := DecodePrepareOK(fr.Payload); err == nil {
				if re := EncodePrepareOK(p); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("prepare-ok round-trip mismatch")
				}
			}
		case TypeExecPrepared:
			if e, err := DecodeExecPrepared(fr.Payload); err == nil {
				if re := EncodeExecPrepared(e); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("exec-prepared round-trip mismatch")
				}
			}
		case TypeClosePrepared:
			if c, err := DecodeClosePrepared(fr.Payload); err == nil {
				if re := EncodeClosePrepared(c); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("close-prepared round-trip mismatch")
				}
			}
		case TypeSubscribe:
			if s, err := DecodeSubscribe(fr.Payload); err == nil {
				if re := EncodeSubscribe(s); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("subscribe round-trip mismatch")
				}
			}
		case TypeSubscribeOK:
			if s, err := DecodeSubscribeOK(fr.Payload); err == nil {
				if re := EncodeSubscribeOK(s); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("subscribe-ok round-trip mismatch")
				}
			}
		case TypeNotify:
			if nt, err := DecodeNotify(fr.Payload); err == nil {
				if re := EncodeNotify(nt); !bytes.Equal(re, fr.Payload) {
					t.Fatalf("notify round-trip mismatch")
				}
			}
		}
	})
}
