// Benchmarks regenerating the paper's evaluation artefacts, one per table
// and figure (plus the ablations), at a reduced scale so `go test -bench=.`
// completes in minutes. The full-scale campaign behind EXPERIMENTS.md is
// `go run ./cmd/ccbench -all`.
package dbcc

import (
	"fmt"
	"io"
	"testing"

	"dbcc/internal/bench"
	"dbcc/internal/xrand"
)

// benchConfig is the reduced-scale configuration for testing.B runs.
func benchConfig() bench.Config {
	return bench.Config{Scale: 0.1, Segments: 8, Reps: 1, Seed: 2019, CapacityFactor: 0, Verify: false}
}

// BenchmarkTable1 renders the complexity summary (trivial, kept so every
// table has a bench target).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

// BenchmarkTable2 generates the full dataset inventory.
func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard, cfg)
	}
}

// BenchmarkTable3 runs one (dataset × algorithm) runtime cell per
// sub-benchmark — the cells of Table III (and the bars of Figure 6).
// Hash-to-Min and Cracker on Path100M are the paper's blow-up cells; they
// run under the storage wall and are reported as DNF.
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	wall := int64(256 << 20)
	for _, dsName := range []string{"Andromeda", "Bitcoin addresses", "Bitcoin full",
		"Candels10", "Candels20", "Candels40", "Candels80", "Candels160",
		"Friendster", "RMAT", "Path100M", "PathUnion10"} {
		ds, ok := bench.DatasetByName(dsName)
		if !ok {
			b.Fatalf("unknown dataset %s", dsName)
		}
		for _, alg := range bench.TableAlgorithms() {
			b.Run(fmt.Sprintf("%s/%s", dsName, alg.Name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					o := bench.Run(ds, alg, cfg, wall)
					if o.Err != nil {
						b.Fatal(o.Err)
					}
					if o.DNF {
						b.ReportMetric(1, "dnf")
						return
					}
					b.ReportMetric(float64(o.Rounds), "rounds")
				}
			})
		}
	}
}

// BenchmarkTable4 measures peak intermediate space per algorithm on one
// representative dataset (Table IV's metric).
func BenchmarkTable4(b *testing.B) {
	cfg := benchConfig()
	ds, _ := bench.DatasetByName("Candels40")
	for _, alg := range bench.TableAlgorithms() {
		b.Run(alg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := bench.Run(ds, alg, cfg, 0)
				if o.Err != nil {
					b.Fatal(o.Err)
				}
				b.ReportMetric(float64(o.PeakBytes)/(1<<20), "peakMiB")
			}
		})
	}
}

// BenchmarkTable5 measures total data written per algorithm (Table V).
func BenchmarkTable5(b *testing.B) {
	cfg := benchConfig()
	ds, _ := bench.DatasetByName("Candels40")
	for _, alg := range bench.TableAlgorithms() {
		b.Run(alg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := bench.Run(ds, alg, cfg, 0)
				if o.Err != nil {
					b.Fatal(o.Err)
				}
				b.ReportMetric(float64(o.Written)/(1<<20), "writtenMiB")
			}
		})
	}
}

// BenchmarkFigure5 regenerates the component-size distributions.
func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		bench.Figure5(io.Discard, cfg)
	}
}

// BenchmarkFigure6 renders the runtime bars from a mini-campaign.
func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	camp := &bench.Campaign{Config: cfg}
	ds, _ := bench.DatasetByName("RMAT")
	for _, alg := range bench.TableAlgorithms() {
		camp.Cells = append(camp.Cells, bench.Run(ds, alg, cfg, 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Figure6(io.Discard, camp)
	}
}

// BenchmarkGamma measures one contraction round (experiment E8).
func BenchmarkGamma(b *testing.B) {
	ds, _ := bench.DatasetByName("RMAT")
	g := ds.Gen(0.1, 1)
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		bench.MeasureGamma(g, rng, false)
	}
}

// BenchmarkRCVariants compares the Fig. 3 and Fig. 4 variants (A1).
func BenchmarkRCVariants(b *testing.B) {
	g := GenerateVideo3D(32, 18, 30, 3)
	for _, variant := range []Variant{Fast, Safe} {
		b.Run(fmt.Sprint(variant), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := Open(Config{})
				if _, err := db.ConnectedComponents(g, Params{Seed: 1, Variant: variant}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRCMethods compares the four randomisation methods (A2).
func BenchmarkRCMethods(b *testing.B) {
	g := GenerateVideo3D(32, 18, 30, 3)
	for _, method := range []Method{FiniteFields, GFPrime, Encryption, RandomReals} {
		b.Run(fmt.Sprint(method), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := Open(Config{})
				if _, err := db.ConnectedComponents(g, Params{Seed: 1, Method: method}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparkProfile compares the MPP and Spark SQL execution profiles
// (experiment E7, Sec. VII-C).
func BenchmarkSparkProfile(b *testing.B) {
	g := GenerateVideo3D(32, 18, 20, 3)
	for _, spark := range []bool{false, true} {
		name := "mpp"
		if spark {
			name = "sparksql"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := Open(Config{SparkSQLProfile: spark})
				if _, err := db.ConnectedComponents(g, Params{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSegments measures MPP parallelism scaling (A4).
func BenchmarkSegments(b *testing.B) {
	g := GenerateVideo3D(32, 18, 30, 3)
	for _, segs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("segments-%d", segs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := Open(Config{Segments: segs})
				if _, err := db.ConnectedComponents(g, Params{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSequentialUnionFind is the single-machine baseline the paper's
// introduction motivates against.
func BenchmarkSequentialUnionFind(b *testing.B) {
	ds, _ := bench.DatasetByName("RMAT")
	g := ds.Gen(0.1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SequentialComponents(g)
	}
}

// BenchmarkRCRounds measures the O(log n) round growth (E9) as a benchmark
// metric.
func BenchmarkRCRounds(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("path-%d", n), func(b *testing.B) {
			g := GeneratePath(n)
			var rounds int
			for i := 0; i < b.N; i++ {
				db := Open(Config{})
				res, err := db.ConnectedComponents(g, Params{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}
