module dbcc

go 1.22
