package dbcc

import (
	"errors"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	db := Open(Config{Segments: 4})
	g := GeneratePath(200)
	res, err := db.ConnectedComponents(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.NumComponents() != 1 {
		t.Fatalf("path has %d components", res.Labels.NumComponents())
	}
	if err := Verify(g, res.Labels); err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 || res.Elapsed <= 0 || res.Stats.Queries == 0 {
		t.Fatalf("metrics not populated: %+v", res)
	}
}

func TestAllPublicAlgorithms(t *testing.T) {
	g := GenerateRMAT(8, 300, 2)
	for _, alg := range []string{RandomisedContraction, HashToMin, TwoPhase, Cracker, BFS, ""} {
		db := Open(Config{Segments: 3})
		res, err := db.ConnectedComponents(g, Params{Algorithm: alg, Seed: 4})
		if err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
		if err := Verify(g, res.Labels); err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	db := Open(Config{})
	if _, err := db.ConnectedComponents(GeneratePath(5), Params{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMethodsAndVariants(t *testing.T) {
	g := GenerateBitcoin(100, 7)
	for _, m := range []Method{FiniteFields, GFPrime, Encryption, RandomReals} {
		for _, v := range []Variant{Fast, Safe} {
			db := Open(Config{Segments: 3})
			res, err := db.ConnectedComponents(g, Params{Seed: 6, Method: m, Variant: v})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, v, err)
			}
			if err := Verify(g, res.Labels); err != nil {
				t.Fatalf("%v/%v: %v", m, v, err)
			}
		}
	}
}

func TestSpaceLimitSurfaces(t *testing.T) {
	db := Open(Config{Segments: 2})
	_, err := db.ConnectedComponents(GeneratePath(2000), Params{Algorithm: HashToMin, MaxLiveBytes: 1000})
	if !errors.Is(err, ErrSpaceLimit) {
		t.Fatalf("err = %v, want ErrSpaceLimit", err)
	}
}

func TestConnectedComponentsOfResidentTable(t *testing.T) {
	db := Open(Config{Segments: 3})
	if err := db.LoadGraph("edges", GeneratePathUnion(4, 100)); err != nil {
		t.Fatal(err)
	}
	res, err := db.ConnectedComponentsOf("edges", Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.NumComponents() != 4 {
		t.Fatalf("components %d, want 4", res.Labels.NumComponents())
	}
}

func TestSQLSessionExposed(t *testing.T) {
	db := Open(Config{Segments: 2})
	if err := db.LoadGraph("e", GeneratePath(10)); err != nil {
		t.Fatal(err)
	}
	_, rows, err := db.SQL().Query("select count(*) as n from e")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 9 {
		t.Fatalf("count %v", rows[0])
	}
	// The paper's UDF is pre-registered.
	_, rows, err = db.SQL().Query("select axplusb(1, 42, 0) as r")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 42 {
		t.Fatalf("axplusb identity: %v", rows[0])
	}
}

func TestReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# c\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges %d", g.NumEdges())
	}
	l := SequentialComponents(g)
	if l.NumComponents() != 1 {
		t.Fatalf("components %d", l.NumComponents())
	}
}

func TestSparkProfileStillCorrect(t *testing.T) {
	db := Open(Config{Segments: 3, SparkSQLProfile: true})
	g := GenerateImage2D(15, 15, 3)
	res, err := db.ConnectedComponents(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}
