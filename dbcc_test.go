package dbcc

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	db := Open(Config{Segments: 4})
	g := GeneratePath(200)
	res, err := db.ConnectedComponents(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.NumComponents() != 1 {
		t.Fatalf("path has %d components", res.Labels.NumComponents())
	}
	if err := Verify(g, res.Labels); err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 1 || res.Elapsed <= 0 || res.Stats.Queries == 0 {
		t.Fatalf("metrics not populated: %+v", res)
	}
}

func TestAllPublicAlgorithms(t *testing.T) {
	g := GenerateRMAT(8, 300, 2)
	for _, alg := range []string{RandomisedContraction, HashToMin, TwoPhase, Cracker, BFS, ""} {
		db := Open(Config{Segments: 3})
		res, err := db.ConnectedComponents(g, Params{Algorithm: alg, Seed: 4})
		if err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
		if err := Verify(g, res.Labels); err != nil {
			t.Fatalf("%q: %v", alg, err)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	db := Open(Config{})
	if _, err := db.ConnectedComponents(GeneratePath(5), Params{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMethodsAndVariants(t *testing.T) {
	g := GenerateBitcoin(100, 7)
	for _, m := range []Method{FiniteFields, GFPrime, Encryption, RandomReals} {
		for _, v := range []Variant{Fast, Safe} {
			db := Open(Config{Segments: 3})
			res, err := db.ConnectedComponents(g, Params{Seed: 6, Method: m, Variant: v})
			if err != nil {
				t.Fatalf("%v/%v: %v", m, v, err)
			}
			if err := Verify(g, res.Labels); err != nil {
				t.Fatalf("%v/%v: %v", m, v, err)
			}
		}
	}
}

func TestSpaceLimitSurfaces(t *testing.T) {
	db := Open(Config{Segments: 2})
	_, err := db.ConnectedComponents(GeneratePath(2000), Params{Algorithm: HashToMin, MaxLiveBytes: 1000})
	if !errors.Is(err, ErrSpaceLimit) {
		t.Fatalf("err = %v, want ErrSpaceLimit", err)
	}
}

func TestConnectedComponentsOfResidentTable(t *testing.T) {
	db := Open(Config{Segments: 3})
	if err := db.LoadGraph("edges", GeneratePathUnion(4, 100)); err != nil {
		t.Fatal(err)
	}
	res, err := db.ConnectedComponentsOf("edges", Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels.NumComponents() != 4 {
		t.Fatalf("components %d, want 4", res.Labels.NumComponents())
	}
}

func TestSQLSessionExposed(t *testing.T) {
	db := Open(Config{Segments: 2})
	if err := db.LoadGraph("e", GeneratePath(10)); err != nil {
		t.Fatal(err)
	}
	_, rows, err := db.SQL().Query("select count(*) as n from e")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 9 {
		t.Fatalf("count %v", rows[0])
	}
	// The paper's UDF is pre-registered.
	_, rows, err = db.SQL().Query("select axplusb(1, 42, 0) as r")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int != 42 {
		t.Fatalf("axplusb identity: %v", rows[0])
	}
}

func TestReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("# c\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges %d", g.NumEdges())
	}
	l := SequentialComponents(g)
	if l.NumComponents() != 1 {
		t.Fatalf("components %d", l.NumComponents())
	}
}

func TestSparkProfileStillCorrect(t *testing.T) {
	db := Open(Config{Segments: 3, SparkSQLProfile: true})
	g := GenerateImage2D(15, 15, 3)
	res, err := db.ConnectedComponents(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Labels); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsRC is the headline concurrency scenario: many
// goroutines run full Randomised Contraction on different graphs through
// one shared DB at the same time. Every labelling must match the
// single-threaded Union/Find baseline computed up front.
func TestConcurrentSessionsRC(t *testing.T) {
	const sessions = 8
	db := Open(Config{Segments: 4})

	type job struct {
		g    *Graph
		want Labelling
	}
	jobs := make([]job, sessions)
	for i := range jobs {
		var g *Graph
		switch i % 4 {
		case 0:
			g = GenerateRMAT(7, 150+10*i, uint64(i+1))
		case 1:
			g = GeneratePathUnion(3, 40+5*i)
		case 2:
			g = GenerateBitcoin(60+10*i, uint64(i+1))
		default:
			g = GenerateImage2D(10+i, 10, uint64(i+1))
		}
		jobs[i] = job{g: g, want: SequentialComponents(g)}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := db.ConnectedComponents(jobs[i].g, Params{Seed: uint64(100 + i)})
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			if err := Verify(jobs[i].g, res.Labels); err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			if got, want := res.Labels.NumComponents(), jobs[i].want.NumComponents(); got != want {
				t.Errorf("session %d: %d components, baseline says %d", i, got, want)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	cs := db.Cluster().ConcurrencyStats()
	if cs.Active != 0 {
		t.Errorf("ConcurrencyStats.Active = %d after all sessions finished, want 0", cs.Active)
	}
	if names := db.Cluster().TableNames(); len(names) != 0 {
		t.Errorf("tables left behind by concurrent runs: %v", names)
	}
}

// TestConcurrentMixedAlgorithms runs a different algorithm in every
// session, all sharing one cluster, so the run-private temp namespaces of
// all five implementations are exercised against each other.
func TestConcurrentMixedAlgorithms(t *testing.T) {
	db := Open(Config{Segments: 3})
	algs := []string{RandomisedContraction, HashToMin, TwoPhase, Cracker, BFS, RandomisedContraction}

	var wg sync.WaitGroup
	for i, alg := range algs {
		wg.Add(1)
		go func(i int, alg string) {
			defer wg.Done()
			g := GenerateRMAT(7, 120+20*i, uint64(i+7))
			res, err := db.ConnectedComponents(g, Params{Algorithm: alg, Seed: uint64(i + 1)})
			if err != nil {
				t.Errorf("%s: %v", alg, err)
				return
			}
			if err := Verify(g, res.Labels); err != nil {
				t.Errorf("%s: %v", alg, err)
			}
		}(i, alg)
	}
	wg.Wait()
}

// TestTwoSessionsSameGraphMatchBaseline pins the acceptance criterion
// verbatim: two sessions running RC concurrently on one cluster, same
// graph and seed, both return the exact single-threaded baseline labelling
// (computed by a solo run on a private DB).
func TestTwoSessionsSameGraphMatchBaseline(t *testing.T) {
	g := GenerateRMAT(8, 250, 3)
	solo := Open(Config{Segments: 4})
	base, err := solo.ConnectedComponents(g, Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	db := Open(Config{Segments: 4})
	results := make([]Labelling, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := db.ConnectedComponents(g, Params{Seed: 9})
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			results[i] = res.Labels
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i, got := range results {
		if len(got) != len(base.Labels) {
			t.Fatalf("session %d labelled %d vertices, baseline %d", i, len(got), len(base.Labels))
		}
		for v, lab := range got {
			if base.Labels[v] != lab {
				t.Fatalf("session %d: vertex %d labelled %d, single-threaded baseline says %d",
					i, v, lab, base.Labels[v])
			}
		}
	}
}
